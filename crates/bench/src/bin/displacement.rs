//! Experiment E14 — trip-displacement profile.
//!
//! The jump-length distribution P(Δr) of consecutive same-user tweets is
//! the mobility literature's standard first diagnostic (the paper's
//! ref.\[9\], Hawelka et al. 2014, reports a truncated power law for
//! global tweets). This binary prints the log-binned PDF, its tail exponent,
//! and the mass per distance regime.

use tweetmob_bench::{print_header, standard_dataset};
use tweetmob_core::displacement_profile;

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header("E14 — consecutive-tweet displacement profile", &cfg, &ds);

    match displacement_profile(&ds) {
        Ok(profile) => {
            println!("{} jumps, median {:.2} km", profile.n_jumps, profile.median_km);
            println!();
            println!("{:>14} {:>14} {:>10}", "Δr (km)", "density", "count");
            for b in profile.pdf.iter().filter(|b| b.count > 0) {
                println!("{:>14.3e} {:>14.3e} {:>10}", b.center, b.density, b.count);
            }
            println!();
            if let Some(tail) = profile.tail {
                println!(
                    "tail: alpha = {:.2} above {:.1} km (n = {}, KS = {:.3})",
                    tail.alpha, tail.xmin, tail.n_tail, tail.ks_distance
                );
            }
            println!("mass per regime:");
            println!("  local (<5 km)            {:.1} %", profile.shares.local * 100.0);
            println!("  metropolitan (5–100)     {:.1} %", profile.shares.metropolitan * 100.0);
            println!("  inter-city (100–1000)    {:.1} %", profile.shares.intercity * 100.0);
            println!("  continental (≥1000)      {:.1} %", profile.shares.continental * 100.0);
            println!();
            println!("expected shape: heavy tail across four decades with most mass");
            println!("local — the multi-scale structure the paper's three study scales");
            println!("slice through.");
        }
        Err(e) => println!("unavailable: {e}"),
    }
}
