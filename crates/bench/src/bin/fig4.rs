//! Regenerates **Figure 4** — estimated vs extracted mobility, three
//! models × three scales.
//!
//! For each scale and model the paper scatters (estimated, extracted)
//! pairs in log-log space with log-binned means (red dots) over the
//! `y = x` diagonal. This binary prints the binned-mean series plus the
//! dispersion summary ("estimation error is roughly bounded by one
//! decade" for National Gravity 2Param, "almost two decades" for
//! Radiation, …).

use tweetmob_bench::{print_header, standard_dataset};
use tweetmob_core::{Experiment, Scale};
use tweetmob_models::{FlowObservation, MobilityModel};
use tweetmob_stats::binning::LogBins;

/// A boxed flow predictor (one per Fig. 4 panel).
type Predictor = Box<dyn Fn(&FlowObservation) -> f64>;

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header("FIGURE 4 — mobility estimation scatters", &cfg, &ds);
    let exp = Experiment::new(&ds);

    for scale in Scale::ALL {
        let report = match exp.mobility(scale) {
            Ok(r) => r,
            Err(e) => {
                println!("{}: {e}", scale.name());
                continue;
            }
        };
        println!(
            "=== {} ({} trips, {} nonzero pairs) ===",
            scale.name(),
            report.od_total,
            report.nonzero_pairs
        );
        let models: Vec<(&str, Predictor)> = vec![
            ("Gravity 4Param", {
                let m = report.gravity4;
                Box::new(move |o: &FlowObservation| m.predict(o))
            }),
            ("Gravity 2Param", {
                let m = report.gravity2;
                Box::new(move |o: &FlowObservation| m.predict(o))
            }),
            ("Radiation", {
                let m = report.radiation;
                Box::new(move |o: &FlowObservation| m.predict(o))
            }),
        ];
        for (name, predict) in &models {
            print_panel(name, &report.observations, predict);
        }
        println!();
    }
    println!("paper shape: grey clouds hug y = x for the Gravity panels at every");
    println!("scale; Radiation scatters across 2–3 decades (under-estimating at");
    println!("National, over-estimating at State, under-estimating small flows at");
    println!("Metropolitan).");
}

/// One scatter panel: log-binned mean of extracted traffic vs estimated
/// traffic (the red dots), with the max deviation from y = x in decades.
fn print_panel(
    name: &str,
    observations: &[FlowObservation],
    predict: &dyn Fn(&FlowObservation) -> f64,
) {
    let mut est = Vec::new();
    let mut obs = Vec::new();
    for o in observations {
        if o.observed_flow > 0.0 {
            let p = predict(o);
            if p > 0.0 && p.is_finite() {
                est.push(p);
                obs.push(o.observed_flow);
            }
        }
    }
    println!("--- {name} ---");
    if est.len() < 3 {
        println!("  too few pairs ({})", est.len());
        return;
    }
    match LogBins::covering(&est, 2) {
        Ok(bins) => {
            println!(
                "  {:>14} {:>16} {:>8}   (red-dot series: x = estimated, y = mean extracted)",
                "estimated", "mean extracted", "pairs"
            );
            match bins.binned_mean(&est, &obs) {
                Ok(stats) => {
                    for b in stats.iter().filter(|b| b.count > 0) {
                        println!("  {:>14.3e} {:>16.3e} {:>8}", b.center, b.mean_y, b.count);
                    }
                }
                Err(e) => println!("  binned means unavailable: {e}"),
            }
        }
        Err(e) => println!("  binning unavailable: {e}"),
    }
    // Max deviation in decades (the paper's "error bounded by a decade").
    let max_dev = est
        .iter()
        .zip(&obs)
        .map(|(&e, &o)| (e.log10() - o.log10()).abs())
        .fold(0.0f64, f64::max);
    let mean_dev = est
        .iter()
        .zip(&obs)
        .map(|(&e, &o)| (e.log10() - o.log10()).abs())
        .sum::<f64>()
        / est.len() as f64;
    println!("  deviation from y = x: mean {mean_dev:.2} decades, max {max_dev:.2} decades");
}
