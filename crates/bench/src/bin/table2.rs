//! Regenerates **Table II** — model performance per scale: Pearson
//! correlation (upper number) and HitRate@50% (lower number).
//!
//! Paper values (Gravity 4Param / Gravity 2Param / Radiation):
//!
//! ```text
//! National      0.877/0.330   0.912/0.397   0.840/0.184
//! State         0.893/0.487   0.896/0.397   0.742/0.166
//! Metropolitan  0.948/0.530   0.963/0.600   0.918/0.397
//! ```
//!
//! Expected reproduction *shape*: Gravity (either variant) beats
//! Radiation at every scale on Pearson, and on HitRate in aggregate;
//! Gravity 2Param is the best or near-best model overall.

use tweetmob_bench::{print_header, standard_dataset};
use tweetmob_core::Experiment;

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header("TABLE II — model performance", &cfg, &ds);
    let exp = Experiment::new(&ds);

    let table = match exp.scale_comparison() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };

    let model_names = ["Gravity 4Param", "Gravity 2Param", "Radiation", "Opportunities"];
    print!("{:<14}", "");
    for m in model_names {
        print!("{m:>16}");
    }
    println!();
    for row in &table {
        print!("{:<14}", row.scale);
        for m in model_names {
            match row.report.evaluation(m) {
                Some(e) => print!("{:>16.3}", e.pearson),
                None => print!("{:>16}", "-"),
            }
        }
        println!("  (Pearson, log)");
        print!("{:<14}", "");
        for m in model_names {
            match row.report.evaluation(m) {
                Some(e) => print!("{:>16.3}", e.hit_rate_50),
                None => print!("{:>16}", "-"),
            }
        }
        println!("  (HitRate@50%)");
    }
    println!();
    println!("extended metrics (paper future work — logRMSE / Spearman / SSI):");
    for row in &table {
        println!("--- {} ---", row.scale);
        for e in &row.report.evaluations {
            println!("  {e}");
        }
    }
    println!();
    println!("fitted parameters:");
    for row in &table {
        let r = &row.report;
        println!(
            "  {:<14} G4: α={:.2} β={:.2} γ={:.2} | G2: γ={:.2} | trips={}",
            row.scale, r.gravity4.alpha, r.gravity4.beta, r.gravity4.gamma, r.gravity2.gamma,
            r.od_total
        );
    }
}
