//! Regenerates **Table I** — statistics of the (synthetic) dataset.
//!
//! Paper reference values: lon [112.921112, 159.278717], lat [−54.640301,
//! −9.228820], Sept 2013 – Apr 2014, 6,304,176 tweets, 473,956 users,
//! 13.3 tweets/user, 35.5 h average waiting time, 4.76 locations/user,
//! and 23,462 / 10,031 / 766 / 180 users above 50/100/500/1000 tweets.

use tweetmob_bench::{print_header, standard_dataset};
use tweetmob_data::DatasetSummary;
use tweetmob_geo::AUSTRALIA_BBOX;

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header("TABLE I — dataset statistics", &cfg, &ds);

    // The paper filters by the Australia bounding box before computing
    // the statistics; the generator already confines tweets to it, but
    // the filter stays in the pipeline for fidelity.
    let filtered = ds.filter_bbox(&AUSTRALIA_BBOX);
    let s = DatasetSummary::of(&filtered);
    println!("{s}");
    println!();
    println!("paper reference: 6,304,176 tweets | 473,956 users | 13.3 tweets/user");
    println!("                 35.5 h avg waiting | 4.76 locations/user");
    println!("                 >50/>100/>500/>1000: 23462/10031/766/180");
    println!();
    println!(
        "scaled to paper user count, our tweet volume would be ~{:.1} M",
        s.avg_tweets_per_user * 473_956.0 / 1e6
    );
}
