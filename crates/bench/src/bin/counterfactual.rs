//! Experiment E11 — the geographic counterfactual behind the paper's
//! headline claim.
//!
//! The paper argues Radiation loses to Gravity in Australia *because* of
//! geography ("unlike U.S.A. where a large population spreads relatively
//! evenly across the country"). This binary holds everything fixed —
//! user count, activity model, the distance-driven travel kernel — and
//! swaps only the world: the real coastal Australian gazetteer vs a
//! uniform jittered-grid country with the same total population.
//!
//! Two scale analogues are compared, because the deficit is strongest
//! where geography is gappiest: the national scale (top-20 cities,
//! ε = 50 km) and the state scale (a contiguous 20-city subregion,
//! ε = 25 km — NSW for Australia, the cities nearest the grid centre for
//! the uniform country). If the paper's causal story is right, the
//! Gravity-vs-Radiation gap must shrink in the uniform world.

use tweetmob_bench::{emit_bench_metrics, measure_instrumentation_overhead, BENCH_METRICS_PATH};
use tweetmob_core::{AreaSet, Experiment, PopulationSource, Scale};
use tweetmob_geo::haversine_km;
use tweetmob_stats::concentration::{gini, theil};
use tweetmob_synth::counterfactual::{top_areas, uniform_country_places};
use tweetmob_synth::gazetteer::world_places;
use tweetmob_synth::{Area, GeneratorConfig, Place, TweetGenerator};

/// The 20 cities nearest the population-weighted centre of a world — a
/// contiguous "state-sized" study region.
fn central_region(places: &[Place], k: usize) -> Vec<Area> {
    let total: f64 = places.iter().map(|p| p.area.population as f64).sum();
    let clat = places
        .iter()
        .map(|p| p.area.center.lat * p.area.population as f64)
        .sum::<f64>()
        / total;
    let clon = places
        .iter()
        .map(|p| p.area.center.lon * p.area.population as f64)
        .sum::<f64>()
        / total;
    let centre = tweetmob_geo::Point::new_unchecked(clat, clon);
    let mut areas: Vec<Area> = places.iter().map(|p| p.area).collect();
    areas.sort_by(|a, b| {
        haversine_km(centre, a.center).total_cmp(&haversine_km(centre, b.center))
    });
    areas.truncate(k);
    // Study areas are conventionally listed by population.
    areas.sort_by_key(|a| std::cmp::Reverse(a.population));
    areas
}

fn main() {
    let mut cfg = GeneratorConfig::default();
    if let Ok(n) = std::env::var("TWEETMOB_USERS") {
        if let Ok(n) = n.trim().parse::<u32>() {
            cfg.n_users = n;
        }
    }

    println!("================================================================");
    println!("E11 — geographic counterfactual: Australia vs a uniform country");
    println!("================================================================");

    let australia = world_places();
    let total_pop: u64 = australia.iter().map(|p| p.area.population).sum();
    let uniform = uniform_country_places(8, 6, total_pop, cfg.seed);

    let apops: Vec<f64> = australia.iter().map(|p| p.area.population as f64).collect();
    let upops: Vec<f64> = uniform.iter().map(|p| p.area.population as f64).collect();
    println!("population concentration   Gini      Theil    (0 = even)");
    println!(
        "  Australia (coastal)     {:>6.3}   {:>7.3}",
        gini(&apops).unwrap(),
        theil(&apops).unwrap()
    );
    println!(
        "  uniform country         {:>6.3}   {:>7.3}",
        gini(&upops).unwrap(),
        theil(&upops).unwrap()
    );
    println!();

    // (world label, study label, areas, radius)
    let setups: Vec<(&str, &str, Vec<Area>, f64)> = vec![
        (
            "Australia",
            "national (top-20 cities)",
            Scale::National.areas().to_vec(),
            50.0,
        ),
        (
            "Australia",
            "state (NSW top-20)",
            Scale::State.areas().to_vec(),
            25.0,
        ),
        (
            "uniform",
            "national analogue (top-20 cities)",
            top_areas(&uniform, 20),
            50.0,
        ),
        (
            "uniform",
            "state analogue (central 20 cities)",
            central_region(&uniform, 20),
            25.0,
        ),
    ];

    // BTreeMap: the verdict below folds over this map, and report lines must
    // come out in the same order every run.
    let mut gap_sum: std::collections::BTreeMap<&str, (f64, usize)> = Default::default();
    for (world, study, areas, radius) in setups {
        let places = if world == "Australia" {
            australia.clone()
        } else {
            uniform.clone()
        };
        let dataset = TweetGenerator::with_places(cfg.clone(), places).generate();
        let experiment = Experiment::new(&dataset);
        let area_set = AreaSet::new(areas, radius);
        match experiment.mobility_with(
            &area_set,
            PopulationSource::Twitter,
            format!("{world} / {study}"),
        ) {
            Ok(report) => {
                let g2 = report.evaluation("Gravity 2Param").expect("g2");
                let rad = report.evaluation("Radiation").expect("radiation");
                let gap = g2.pearson - rad.pearson;
                println!("--- {world}: {study}, ε = {radius} km ---");
                println!(
                    "  Gravity 2Param  r = {:.3}  hit@50% = {:.3}",
                    g2.pearson, g2.hit_rate_50
                );
                println!(
                    "  Radiation       r = {:.3}  hit@50% = {:.3}",
                    rad.pearson, rad.hit_rate_50
                );
                println!(
                    "  gravity − radiation gap = {gap:+.3}   ({} trips, {} pairs)",
                    report.od_total, report.nonzero_pairs
                );
                println!();
                let e = gap_sum.entry(world).or_insert((0.0, 0));
                e.0 += gap;
                e.1 += 1;
            }
            Err(e) => println!("{world} / {study}: {e}"),
        }
    }

    let mean = |w: &str| {
        gap_sum
            .get(w)
            .map(|&(s, n)| s / n.max(1) as f64)
            .unwrap_or(f64::NAN)
    };
    let aus = mean("Australia");
    let uni = mean("uniform");
    println!("verdict: mean gravity-over-radiation gap");
    println!("  Australia       {aus:+.3}");
    println!("  uniform country {uni:+.3}");
    if uni < aus {
        println!("→ the gap shrinks on even geography: Radiation's deficit in the");
        println!("  paper is geographic, exactly as §IV argues.");
    } else {
        println!("→ the gap did NOT shrink — investigate before citing E11.");
    }

    // Coda — instrumentation overhead: the same generate + national-fit
    // pipeline with the registry recording vs disabled (no-op baseline).
    let mut overhead_cfg = cfg.clone();
    overhead_cfg.n_users = overhead_cfg.n_users.min(20_000);
    let (on_ns, off_ns) = measure_instrumentation_overhead(|| {
        let ds = TweetGenerator::with_places(overhead_cfg.clone(), australia.clone()).generate();
        let exp = Experiment::new(&ds);
        let _ = std::hint::black_box(exp.mobility(Scale::National));
    });
    let pct = if off_ns > 0 {
        (on_ns as f64 - off_ns as f64) / off_ns as f64 * 100.0
    } else {
        0.0
    };
    println!();
    println!(
        "instrumentation overhead: enabled {:.0} ms vs disabled {:.0} ms ({pct:+.2}%)",
        on_ns as f64 / 1e6,
        off_ns as f64 / 1e6
    );

    let notes = serde_json::json!({
        "overhead": {
            "enabled_ns": on_ns,
            "disabled_ns": off_ns,
            "overhead_percent": pct,
        }
    });
    if let Err(e) = emit_bench_metrics("counterfactual", notes) {
        eprintln!("warning: could not write {BENCH_METRICS_PATH}: {e}");
    } else {
        println!("pipeline metrics appended to {BENCH_METRICS_PATH}");
    }
}
