//! Writes the paper's figures as SVG files under `figures/`.
//!
//! The other regeneration binaries print the numeric series; this one
//! draws them — Fig. 1 as a density heatmap, Fig. 2 as log-log PDFs,
//! Fig. 3 as the rescaled-population scatter, and Fig. 4 as the nine
//! estimated-vs-extracted panels with grey pair clouds, red binned means
//! and the `y = x` diagonal, matching the paper's layout.

use std::fs;
use std::path::Path;
use tweetmob_bench::{print_header, standard_dataset};
use tweetmob_core::{Experiment, Scale};
use tweetmob_geo::{DensityGrid, AUSTRALIA_BBOX};
use tweetmob_models::{FlowObservation, MobilityModel};
use tweetmob_plot::{AxisKind, Heatmap, ScatterChart};
use tweetmob_stats::binning::LogBins;

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header("SVG figure export", &cfg, &ds);
    let out_dir = Path::new("figures");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let mut written = Vec::new();
    let mut save = |name: &str, svg: String| {
        let path = out_dir.join(name);
        match fs::write(&path, svg) {
            Ok(()) => written.push(path.display().to_string()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    };

    // ---- Fig. 1: density heatmap ----------------------------------
    let mut grid = DensityGrid::new(AUSTRALIA_BBOX, 0.2);
    grid.extend(ds.iter_points());
    let (w, h) = (grid.width(), grid.height());
    let mut counts = Vec::with_capacity(w * h);
    for row in 0..h {
        for col in 0..w {
            counts.push(grid.count(col, row).unwrap_or(0));
        }
    }
    save(
        "fig1_density.svg",
        Heatmap::new("Fig. 1 — tweet density (log colour scale)", w, h, counts).render(),
    );

    // ---- Fig. 2: tweeting dynamics --------------------------------
    let counts: Vec<f64> = ds.tweets_per_user().iter().map(|&c| c as f64).collect();
    save("fig2a_tweets_per_user.svg", pdf_chart(
        "Fig. 2(a) — P(no. tweets per user)",
        "tweets per user",
        &counts,
        4,
    ));
    let waits: Vec<f64> = ds
        .waiting_times_secs()
        .iter()
        .map(|&s| s as f64)
        .filter(|&s| s > 0.0)
        .collect();
    save("fig2b_waiting_times.svg", pdf_chart(
        "Fig. 2(b) — P(DT), seconds",
        "waiting time DT (s)",
        &waits,
        2,
    ));

    // ---- Fig. 3: population correlation ----------------------------
    let exp = Experiment::new(&ds);
    let mut chart = ScatterChart::new(
        "Fig. 3 — rescaled Twitter population vs census",
        "rescaled no. unique twitter users",
        "census population",
    )
    .x_axis(AxisKind::Log)
    .y_axis(AxisKind::Log)
    .with_diagonal();
    for scale in Scale::ALL {
        match exp.population_correlation(scale) {
            Ok(pop) => {
                let pts: Vec<(f64, f64)> = pop
                    .areas
                    .iter()
                    .map(|a| (a.rescaled, a.census))
                    .collect();
                chart = chart.series(scale.name(), &pts);
            }
            Err(e) => eprintln!("{}: {e}", scale.name()),
        }
    }
    save("fig3_population.svg", chart.render());

    // ---- Fig. 4: nine model panels ---------------------------------
    for scale in Scale::ALL {
        let report = match exp.mobility(scale) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", scale.name());
                continue;
            }
        };
        let panels: [(&str, Box<dyn Fn(&FlowObservation) -> f64>); 3] = [
            ("Gravity 4Param", {
                let m = report.gravity4;
                Box::new(move |o: &FlowObservation| m.predict(o))
            }),
            ("Gravity 2Param", {
                let m = report.gravity2;
                Box::new(move |o: &FlowObservation| m.predict(o))
            }),
            ("Radiation", {
                let m = report.radiation;
                Box::new(move |o: &FlowObservation| m.predict(o))
            }),
        ];
        for (name, predict) in &panels {
            let mut pairs = Vec::new();
            for o in &report.observations {
                if o.observed_flow > 0.0 {
                    let p = predict(o);
                    if p > 0.0 && p.is_finite() {
                        pairs.push((p, o.observed_flow));
                    }
                }
            }
            let mut chart = ScatterChart::new(
                &format!("Fig. 4 — {} / {}", scale.name(), name),
                "estimated traffic",
                "traffic from tweets",
            )
            .x_axis(AxisKind::Log)
            .y_axis(AxisKind::Log)
            .with_diagonal()
            .series("pairs", &pairs);
            // Red dots: log-binned means like the paper.
            let est: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let obs: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Ok(bins) = LogBins::covering(&est, 2) {
                if let Ok(stats) = bins.binned_mean(&est, &obs) {
                    let means: Vec<(f64, f64)> = stats
                        .iter()
                        .filter(|b| b.count > 0)
                        .map(|b| (b.center, b.mean_y))
                        .collect();
                    chart = chart.series("binned mean", &means);
                }
            }
            let file = format!(
                "fig4_{}_{}.svg",
                scale.name().to_lowercase(),
                name.to_lowercase().replace(' ', "_")
            );
            save(&file, chart.render());
        }
    }

    println!("wrote {} SVG files:", written.len());
    for p in written {
        println!("  {p}");
    }
}

/// A log-log PDF chart from raw samples.
fn pdf_chart(title: &str, x_label: &str, samples: &[f64], bins_per_decade: usize) -> String {
    let mut chart = ScatterChart::new(title, x_label, "probability density")
        .x_axis(AxisKind::Log)
        .y_axis(AxisKind::Log);
    match LogBins::covering(samples, bins_per_decade) {
        Ok(bins) => {
            let pts: Vec<(f64, f64)> = bins
                .pdf(samples)
                .iter()
                .filter(|b| b.count > 0)
                .map(|b| (b.center, b.density))
                .collect();
            chart = chart.series_with_style(
                "log-binned PDF",
                &pts,
                tweetmob_plot::SeriesStyle {
                    color: "#1f77b4",
                    radius: 3.0,
                    opacity: 0.9,
                    joined: true,
                },
            );
        }
        Err(e) => eprintln!("{title}: {e}"),
    }
    chart.render()
}
