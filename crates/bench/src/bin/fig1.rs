//! Regenerates **Figure 1** — the tweet-density map of Australia.
//!
//! The paper plots geo-tagged tweets on a log colour scale (10⁰…10⁵ per
//! cell) and observes that the dense cells "highlight Australia's most
//! dense areas and roughly resemble its population distribution". This
//! binary rasterises the synthetic stream at 0.2°, prints the ASCII map
//! (north up) and the top-10 densest cells with the nearest known city.

use tweetmob_bench::{print_header, standard_dataset};
use tweetmob_geo::{haversine_km, DensityGrid, AUSTRALIA_BBOX};
use tweetmob_synth::NATIONAL_TOP20;

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header("FIGURE 1 — tweet-density map", &cfg, &ds);

    let mut grid = DensityGrid::new(AUSTRALIA_BBOX, 0.2);
    grid.extend(ds.iter_points());
    println!(
        "raster: {}×{} cells at 0.2°, {} tweets, max cell {}",
        grid.width(),
        grid.height(),
        grid.total(),
        grid.max_count()
    );
    println!();
    print!("{}", grid.render_ascii(3));
    println!();
    println!("top 10 densest cells (log10 colour scale like the paper):");
    println!(
        "{:<6} {:>10} {:>8}   nearest city",
        "rank", "count", "log10"
    );
    for (rank, cell) in grid.top_cells(10).iter().enumerate() {
        let nearest = NATIONAL_TOP20
            .iter()
            .min_by(|a, b| {
                haversine_km(a.center, cell.center)
                    .total_cmp(&haversine_km(b.center, cell.center))
            })
            .expect("gazetteer not empty");
        println!(
            "{:<6} {:>10} {:>8.2}   {} ({:.0} km away)",
            rank + 1,
            cell.count,
            (cell.count as f64).log10(),
            nearest.name,
            haversine_km(nearest.center, cell.center)
        );
    }
    println!();
    println!("expected shape: dense cells hug the east/south-east coast and the");
    println!("capitals, with a nearly empty interior — Australia's population map.");
}
