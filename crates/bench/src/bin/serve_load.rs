//! Load-generates against an in-process `tweetmob-serve` server and
//! writes the committed `BENCH_serve.json`: p50/p99 request latency and
//! sustained req/s at 1, 2, 4 and 8 concurrent clients.
//!
//! ```text
//! cargo run --release -p tweetmob-bench --bin serve_load
//! ```
//!
//! The server is fitted from the standard synthetic dataset
//! (`TWEETMOB_USERS` / `TWEETMOB_SEED` honoured) and runs a four-worker
//! pool; the driven endpoint is a pairwise `/predict` — the hot query
//! of the serving layer. `TWEETMOB_SERVE_REQUESTS` overrides the
//! per-client request count (default 2000; CI smoke passes a small
//! value and discards the file).

use std::sync::Arc;
use tweetmob_bench::{standard_dataset, BENCH_SERVE_PATH};
use tweetmob_core::{Experiment, Scale};
use tweetmob_serve::{run_load, serve, AppState};

/// Worker threads the benched server runs.
const SERVER_WORKERS: usize = 4;

/// Client-concurrency ladder.
const CLIENTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let per_client: usize = std::env::var("TWEETMOB_SERVE_REQUESTS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2000);

    let (cfg, ds) = standard_dataset();
    eprintln!(
        "serve_load: fitting national models over {} users (seed {})",
        cfg.n_users, cfg.seed
    );
    let exp = Experiment::new(&ds);
    let (_report, bundle) = exp.fit(Scale::National).expect("fit national models");
    let state = AppState::new(Arc::new(bundle));
    let handle = serve("127.0.0.1:0", state, SERVER_WORKERS).expect("bind bench server");
    let addr = handle.addr();
    let target = "/predict?model=gravity2&origin=Sydney&dest=Melbourne";

    let mut loads = Vec::new();
    for &clients in &CLIENTS {
        let report =
            run_load(&addr, target, clients, per_client).expect("connect to bench server");
        eprintln!(
            "serve_load: {clients} client(s): p50 {} µs, p99 {} µs, {:.0} req/s ({} ok, {} errors)",
            report.p50_ns / 1_000,
            report.p99_ns / 1_000,
            report.requests_per_sec,
            report.ok,
            report.errors
        );
        assert_eq!(report.errors, 0, "bench requests must all succeed");
        loads.push(serde_json::json!({
            "clients": report.clients,
            "requests": report.ok,
            "p50_ns": report.p50_ns,
            "p99_ns": report.p99_ns,
            "requests_per_sec": report.requests_per_sec,
        }));
    }
    handle.stop();

    let doc = serde_json::json!({
        "schema_version": 1,
        "bin": "serve_load",
        "n_users": cfg.n_users,
        "seed": cfg.seed,
        "server_workers": SERVER_WORKERS,
        "requests_per_client": per_client,
        "endpoint": target,
        "loads": loads,
    });
    let mut text = serde_json::to_string_pretty(&doc).expect("serialize bench doc");
    text.push('\n');
    std::fs::write(BENCH_SERVE_PATH, text).expect("write BENCH_serve.json");
    println!("wrote {BENCH_SERVE_PATH}");
}
