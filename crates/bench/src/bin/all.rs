//! Runs every paper-regeneration binary in sequence on one shared
//! dataset-equivalent configuration (each binary regenerates its own
//! dataset deterministically from the same seed, so outputs are
//! consistent with running them individually).

use std::process::Command;

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failures = 0;
    for bin in [
        "table1", "fig1", "fig2", "fig3", "fig4", "table2",
        "counterfactual", "temporal", "ablation_models", "displacement",
    ] {
        println!();
        let path = exe_dir.join(bin);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures += 1;
            }
            Err(e) => {
                eprintln!("failed to launch {} ({e}); build with `cargo build --release -p tweetmob-bench --bins` first", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
