//! Perf-regression runner over the committed `BENCH_pipeline.json`
//! baseline.
//!
//! ```text
//! cargo run --release -p tweetmob-bench --bin perf_regress -- --check
//! cargo run --release -p tweetmob-bench --bin perf_regress -- --record
//! ```
//!
//! `--check` (the default, what CI runs) re-measures every pipeline
//! stage and hot kernel, compares the machine-normalized ratios against
//! the committed baseline under the `regression` key, writes the full
//! verdict table to `BENCH_regression_current.json`, and exits non-zero
//! when any stage regressed past the tolerance
//! (`TWEETMOB_PERF_TOLERANCE`, default 25%).
//!
//! `--record` refreshes the baseline in place — run it (at the same
//! `TWEETMOB_USERS` / `TWEETMOB_SEED` as the CI job) and commit the
//! updated `BENCH_pipeline.json` whenever a deliberate perf change
//! shifts a stage's cost.
//!
//! Both modes time at one worker thread; see
//! [`tweetmob_bench::regress`] for the normalization story.

use tweetmob_bench::regress::{
    compare, measure, passes, stage_ratios, tolerance, Measurement, REGRESSION_CURRENT_PATH,
    REGRESSION_KEY,
};
use tweetmob_bench::BENCH_METRICS_PATH;

fn read_doc(path: &str) -> serde_json::Value {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .filter(serde_json::Value::is_object)
        .unwrap_or_else(|| serde_json::Value::Object(serde_json::Map::new()))
}

fn write_doc(path: &str, doc: &serde_json::Value) -> std::io::Result<()> {
    let mut text = serde_json::to_string_pretty(doc)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    text.push('\n');
    std::fs::write(path, text)
}

fn record(current: &Measurement) -> i32 {
    let mut doc = read_doc(BENCH_METRICS_PATH);
    doc[REGRESSION_KEY] = current.to_value();
    if let Err(e) = write_doc(BENCH_METRICS_PATH, &doc) {
        eprintln!("failed to write {BENCH_METRICS_PATH}: {e}");
        return 1;
    }
    println!("recorded baseline into {BENCH_METRICS_PATH} (commit it)");
    0
}

fn check(current: &Measurement) -> i32 {
    let doc = read_doc(BENCH_METRICS_PATH);
    let baseline = &doc[REGRESSION_KEY];
    let Some(baseline_ratios) = stage_ratios(baseline) else {
        eprintln!(
            "no committed baseline under {REGRESSION_KEY:?} in {BENCH_METRICS_PATH}; \
             run `perf_regress --record` and commit the result"
        );
        return 2;
    };
    if let Some(baseline_users) = baseline["n_users"].as_u64() {
        if baseline_users != current.n_users {
            eprintln!(
                "baseline was measured at {baseline_users} users but this run used {}; \
                 set TWEETMOB_USERS={baseline_users} (or re-record the baseline)",
                current.n_users
            );
            return 2;
        }
    }

    let tolerance = tolerance();
    let current_ratios = current
        .stages
        .iter()
        .map(|(name, sample)| (name.clone(), sample.ratio))
        .collect();
    let rows = compare(&baseline_ratios, &current_ratios, tolerance);
    let pass = passes(&rows);

    println!();
    println!("baseline comparison (tolerance {:.0}%):", tolerance * 100.0);
    let mut stages = serde_json::Map::new();
    for row in &rows {
        let change = row
            .change
            .map_or_else(|| "     -  ".to_string(), |c| format!("{:+7.1}%", c * 100.0));
        println!(
            "  {:<24} baseline {:>8} current {:>8}   {change}   {}",
            row.stage,
            row.baseline_ratio
                .map_or_else(|| "-".into(), |r| format!("{r:.4}")),
            row.current_ratio
                .map_or_else(|| "-".into(), |r| format!("{r:.4}")),
            row.verdict.as_str(),
        );
        let mut entry = serde_json::Map::new();
        if let Some(b) = row.baseline_ratio {
            entry.insert("baseline_ratio".into(), serde_json::Value::from(b));
        }
        if let Some(c) = row.current_ratio {
            entry.insert("current_ratio".into(), serde_json::Value::from(c));
        }
        if let Some(c) = row.change {
            entry.insert("change".into(), serde_json::Value::from(c));
        }
        entry.insert(
            "verdict".into(),
            serde_json::Value::from(row.verdict.as_str()),
        );
        stages.insert(row.stage.clone(), serde_json::Value::Object(entry));
    }

    let mut report = serde_json::Map::new();
    report.insert("tolerance".into(), serde_json::Value::from(tolerance));
    report.insert(
        "baseline_calibration_ns".into(),
        baseline["calibration_ns"].clone(),
    );
    report.insert(
        "current_calibration_ns".into(),
        serde_json::Value::from(current.calibration_ns as f64),
    );
    report.insert("stages".into(), serde_json::Value::Object(stages));
    report.insert("pass".into(), serde_json::Value::from(pass));
    if let Err(e) = write_doc(REGRESSION_CURRENT_PATH, &serde_json::Value::Object(report)) {
        eprintln!("failed to write {REGRESSION_CURRENT_PATH}: {e}");
        return 1;
    }
    println!();
    println!("wrote {REGRESSION_CURRENT_PATH}");
    if pass {
        println!("perf check passed: every stage within tolerance of the baseline");
        0
    } else {
        eprintln!("error: at least one stage regressed past the tolerance (or vanished)");
        1
    }
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "--check".into());
    let handler = match mode.as_str() {
        "--check" => check,
        "--record" => record,
        other => {
            eprintln!("unknown mode {other:?}: expected --check or --record");
            std::process::exit(2);
        }
    };
    println!("measuring pipeline + kernel stages (1 thread, best of 3):");
    let current = measure();
    println!(
        "calibration {} ns over {} users (seed 0x{:X})",
        current.calibration_ns, current.n_users, current.seed
    );
    std::process::exit(handler(&current));
}
