//! Regenerates **Figure 3** — population correlation at three scales.
//!
//! (a) Rescaled Twitter population vs census population for 60 areas (20
//! per scale, ε = 50/25/2 km). Paper: pooled Pearson r = 0.816,
//! p = 2.06×10⁻¹⁵.
//! (b) Metropolitan sensitivity: shrinking ε to 0.5 km "results in
//! significant increase of error".
//!
//! Pass `--sweep` for the extended ε ablation (E9 in DESIGN.md).

use tweetmob_bench::{print_header, standard_dataset};
use tweetmob_core::{Experiment, Scale};

fn main() {
    let sweep = std::env::args().any(|a| a == "--sweep");
    let (cfg, ds) = standard_dataset();
    print_header("FIGURE 3 — population estimation", &cfg, &ds);
    let exp = Experiment::new(&ds);

    println!("(a) per-scale correlation at the paper's search radii");
    println!();
    for scale in Scale::ALL {
        match exp.population_correlation(scale) {
            Ok(pop) => {
                println!(
                    "--- {} (ε = {} km) ---",
                    scale.name(),
                    scale.search_radius_km()
                );
                println!("{pop}");
                println!("median users/area: {:.0}", pop.median_users);
                println!();
            }
            Err(e) => println!("{}: {e}", scale.name()),
        }
    }
    match exp.pooled_population() {
        Ok(pooled) => {
            println!(
                "pooled over 60 areas: r(log) = {:.3} (p = {:.2e}), r(raw) = {:.3}",
                pooled.pooled.r, pooled.pooled.p_two_tailed, pooled.pooled_raw.r
            );
            println!("paper: r = 0.816, p = 2.06e-15");
        }
        Err(e) => println!("pooled correlation unavailable: {e}"),
    }
    println!();

    println!("(b) metropolitan sensitivity: ε = 2 km vs ε = 0.5 km");
    for radius in [2.0, 0.5] {
        match exp.population_correlation_with_radius(Scale::Metropolitan, radius) {
            Ok(pop) => println!(
                "  ε = {radius:>4} km: r(log) = {:+.3}, median users/area = {:.0}",
                pop.correlation.r, pop.median_users
            ),
            Err(e) => println!("  ε = {radius:>4} km: {e}"),
        }
    }
    println!("paper: the 0.5 km variant scatters visibly more (error grows).");

    if sweep {
        println!();
        println!("(E9 ablation) metropolitan radius sweep");
        println!("{:>8} {:>10} {:>16}", "ε (km)", "r(log)", "median users");
        for radius in [0.25, 0.5, 1.0, 2.0, 5.0, 10.0] {
            match exp.population_correlation_with_radius(Scale::Metropolitan, radius) {
                Ok(pop) => println!(
                    "{:>8} {:>10.3} {:>16.0}",
                    radius, pop.correlation.r, pop.median_users
                ),
                Err(e) => println!("{radius:>8} unavailable: {e}"),
            }
        }
    }
}
