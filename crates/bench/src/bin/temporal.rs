//! Experiment E12 — temporal responsiveness.
//!
//! The paper's pitch is that tweets are "generated continuously in large
//! volume … which provides timely and accessible information on human
//! mobility". This binary quantifies the claim the paper itself never
//! tests: how much collection time does the population estimate need?
//! It slices the 8-month window into months and repeats Fig. 3 inside
//! each.

use tweetmob_bench::{emit_bench_metrics, print_header, standard_dataset, BENCH_METRICS_PATH};
use tweetmob_core::{temporal_stability, waiting_time_stationarity, Scale};

fn main() {
    let (cfg, ds) = standard_dataset();
    print_header("E12 — temporal responsiveness of population estimation", &cfg, &ds);

    for scale in [Scale::National, Scale::Metropolitan] {
        println!("--- {} scale, 8 monthly windows ---", scale.name());
        match temporal_stability(&ds, scale, 8) {
            Ok(st) => {
                println!(
                    "{:>7} {:>10} {:>9} {:>12} {:>12}",
                    "window", "tweets", "users", "r(census)", "r(full)"
                );
                for (k, w) in st.windows.iter().enumerate() {
                    println!(
                        "{:>7} {:>10} {:>9} {:>12.3} {:>12.3}",
                        k + 1,
                        w.n_tweets,
                        w.n_users,
                        w.vs_census.r,
                        w.vs_full_period.r
                    );
                }
                println!("worst single-month census correlation: {:.3}", st.worst_census_r());
            }
            Err(e) => println!("unavailable: {e}"),
        }
        println!();
    }
    match waiting_time_stationarity(&ds) {
        Ok((ks, p)) => println!(
            "waiting-time stationarity (first vs second half, per-user capped): KS = {ks:.3}, p = {p:.3}"
        ),
        Err(e) => println!("stationarity test unavailable: {e}"),
    }
    println!();
    println!("reading: if every monthly r(census) is close to the full-period");
    println!("value, one month of tweets already suffices for a responsive");
    println!("population estimate — the feasibility the paper argues for.");

    if let Err(e) = emit_bench_metrics("temporal", serde_json::Value::Null) {
        eprintln!("warning: could not write {BENCH_METRICS_PATH}: {e}");
    } else {
        println!("pipeline metrics appended to {BENCH_METRICS_PATH}");
    }
}
