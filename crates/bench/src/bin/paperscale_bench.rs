//! Paper-scale end-to-end benchmark for the columnar data layer.
//!
//! Runs the whole pipeline at the paper's own scale — 473,956 users,
//! ~6.3M geo-tagged tweets — and records per-stage wall times into
//! `BENCH_paperscale.json` under the `"paperscale"` key:
//!
//! * **generate** — synthetic stream, direct-to-columns (no re-sort).
//! * **encode** — the dataset serialized as `TWB0` row-struct records
//!   and as `TWC0` columnar (sizes recorded; the columnar file is the
//!   smaller one because the per-row user column collapses to a CSR
//!   index).
//! * **load** — decoding each encoding back into a [`TweetDataset`]:
//!   the row path re-parses 28-byte records and re-sorts; the columnar
//!   path is header validation plus bulk little-endian column decode.
//! * **population** — Fig.-3 population correlation over the coordinate
//!   columns at the national scale.
//! * **trips** — OD extraction: the serial row-struct reference
//!   ([`extract_trips_reference`]) vs the sharded batch-kernel path
//!   ([`extract_trips`]) at 1/2/4/8 threads.
//! * **fits** — all four paper models on the extracted observations;
//!   Radiation and Opportunities also time their pre-columnar reference
//!   fitters.
//!
//! Every cross-path and cross-thread-count pair of results is checked
//! for byte identity; the process exits 1 on the first mismatch, so a
//! committed `BENCH_paperscale.json` is also a correctness witness.
//!
//! ```text
//! cargo run --release -p tweetmob-bench --bin paperscale_bench
//! TWEETMOB_USERS=20000 cargo run --release -p tweetmob-bench --bin paperscale_bench
//! ```
//!
//! `TWEETMOB_USERS` scales the run down (the CI `paperscale` job uses
//! it); the dataset defaults to the paper's 473,956 users. Timings are
//! best-of-N with a warm-up pass, fewer reps for the expensive stages.

use tweetmob_bench::{emit_bench_metrics_to, print_header, BENCH_PAPERSCALE_PATH};
use tweetmob_core::{extract_trips, extract_trips_reference, AreaSet, Experiment, Scale};
use tweetmob_data::{binary, columnar, TweetDataset};
use tweetmob_models::{
    Gravity2Fit, Gravity4Fit, GravityGrid, OpportunitiesFit, RadiationFit,
};
use tweetmob_obs::MetricsRegistry;
use tweetmob_synth::{GeneratorConfig, TweetGenerator};

/// The paper's collected-user count (§II: 473,956 unique users).
const PAPER_USERS: u32 = 473_956;

/// Runs `run` once as warm-up, then `reps` timed repetitions under the
/// private stopwatch; returns the fastest repetition's nanoseconds and
/// the last result.
fn best_of<T>(
    stopwatch: &MetricsRegistry,
    name: &str,
    reps: usize,
    mut run: impl FnMut() -> T,
) -> (u64, T) {
    let mut result = run(); // warm-up
    for _ in 0..reps.max(1) {
        let _timer = stopwatch.span(name);
        result = run();
    }
    let best = stopwatch.span_stat(name).map_or(u64::MAX, |s| s.min_ns);
    (best, result)
}

fn speedup(old_ns: u64, new_ns: u64) -> f64 {
    if new_ns > 0 {
        old_ns as f64 / new_ns as f64
    } else {
        0.0
    }
}

fn main() {
    let mut cfg = GeneratorConfig::default();
    cfg.n_users = PAPER_USERS;
    if let Some(n) = std::env::var("TWEETMOB_USERS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
    {
        cfg.n_users = n.clamp(1, u64::from(u32::MAX)) as u32;
    }
    if let Some(seed) = std::env::var("TWEETMOB_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
    {
        cfg.seed = seed;
    }
    let quick = cfg.n_users < PAPER_USERS;
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let stopwatch = MetricsRegistry::new();
    let mut mismatch = false;
    let mut check = |label: &str, identical: bool| {
        if !identical {
            eprintln!("BYTE-IDENTITY FAILURE: {label}");
        }
        mismatch |= !identical;
        identical
    };

    // --- Stage 1: generate (direct-to-columns) ------------------------
    // Expensive at full scale, so warm-up + one timed rep.
    let (generate_ns, ds) = best_of(&stopwatch, "generate", 1, || {
        TweetGenerator::new(cfg.clone()).generate()
    });
    print_header(
        if quick {
            "PAPER-SCALE BENCH (scaled down) — columnar data layer, end to end"
        } else {
            "PAPER-SCALE BENCH — columnar data layer, end to end"
        },
        &cfg,
        &ds,
    );
    println!("  generate                 {generate_ns:>12} ns");

    // --- Stage 2: encode both formats ---------------------------------
    let (encode_rows_ns, rows_bytes) = best_of(&stopwatch, "encode/rows", 2, || {
        let mut buf = Vec::new();
        binary::write_binary(&ds, &mut buf).expect("encode rows to memory");
        buf
    });
    let (encode_cols_ns, cols_bytes) = best_of(&stopwatch, "encode/columnar", 2, || {
        let mut buf = Vec::new();
        columnar::write_columnar(&ds, &mut buf).expect("encode columnar to memory");
        buf
    });
    println!(
        "  encode   rows {encode_rows_ns:>12} ns ({} B)   columnar {encode_cols_ns:>12} ns ({} B)",
        rows_bytes.len(),
        cols_bytes.len()
    );

    // --- Stage 3: load rows vs columnar -------------------------------
    let (load_rows_ns, rows_ds) = best_of(&stopwatch, "load/rows", 3, || {
        binary::read_binary(rows_bytes.as_slice()).expect("decode rows")
    });
    let (load_cols_ns, cols_ds) = best_of(&stopwatch, "load/columnar", 3, || {
        columnar::decode_columnar(&cols_bytes).expect("decode columnar")
    });
    let load_identical =
        check("load: columnar vs rows", cols_ds == rows_ds) & check("load: columnar vs generated", cols_ds == ds);
    let load_speedup = speedup(load_rows_ns, load_cols_ns);
    println!(
        "  load     rows {load_rows_ns:>12} ns   columnar {load_cols_ns:>12} ns   speedup {load_speedup:>5.2}x   identical: {load_identical}"
    );
    drop((rows_ds, cols_ds, rows_bytes));

    // --- Stage 4: population over the coordinate columns ---------------
    let (population_ns, pooled_r) = best_of(&stopwatch, "population", 1, || {
        let exp = Experiment::new(&ds);
        exp.pooled_population().expect("pooled population").pooled.r
    });
    println!("  population               {population_ns:>12} ns   pooled r = {pooled_r:.3}");

    // --- Stage 5: trips, reference vs batch at 1/2/4/8 threads ---------
    let areas = AreaSet::of_scale(Scale::National);
    let (trips_ref_ns, od_reference) = best_of(&stopwatch, "trips/reference", 1, || {
        extract_trips_reference(&ds, &areas)
    });
    println!("  trips    row-struct reference (serial) {trips_ref_ns:>12} ns   ({} trips)", od_reference.total());
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    let mut trips_threads = serde_json::Map::new();
    for &t in thread_counts {
        let (ns, od) = best_of(&stopwatch, &format!("trips/{t}"), 2, || {
            tweetmob_par::with_threads(t, || extract_trips(&ds, &areas))
        });
        let identical = check(&format!("trips @{t} threads vs reference"), od == od_reference);
        println!(
            "  trips    columnar @{t} thread(s)   {ns:>12} ns   speedup vs rows {:>5.2}x   identical: {identical}",
            speedup(trips_ref_ns, ns)
        );
        trips_threads.insert(
            t.to_string(),
            serde_json::json!({
                "columnar_ns": ns,
                "speedup_vs_rows": speedup(trips_ref_ns, ns),
                "identical": identical,
            }),
        );
    }

    // --- Stage 6: model fits -------------------------------------------
    // Observations come from the already-verified national OD matrix via
    // the experiment runner (same path `tweetmob fit` takes).
    let exp = Experiment::new(&ds);
    let report = exp
        .mobility(Scale::National)
        .expect("mobility report at paper scale");
    let obs = &report.observations;
    let grid = GravityGrid::default();
    let mut fits_threads = serde_json::Map::new();
    let mut baselines: Option<[String; 4]> = None;
    for &t in thread_counts {
        let (g4_ns, g4) = best_of(&stopwatch, &format!("fit/gravity4/{t}"), 2, || {
            tweetmob_par::with_threads(t, || Gravity4Fit::fit_grid(obs, &grid).expect("gravity4"))
        });
        let (g2_ns, g2) = best_of(&stopwatch, &format!("fit/gravity2/{t}"), 2, || {
            tweetmob_par::with_threads(t, || Gravity2Fit::fit(obs).expect("gravity2"))
        });
        let (rad_ns, rad) = best_of(&stopwatch, &format!("fit/radiation/{t}"), 2, || {
            tweetmob_par::with_threads(t, || RadiationFit::fit_columnar(obs).expect("radiation"))
        });
        let (opp_ns, opp) = best_of(&stopwatch, &format!("fit/opportunities/{t}"), 2, || {
            tweetmob_par::with_threads(t, || OpportunitiesFit::fit_columnar(obs).expect("opportunities"))
        });
        let rendered = [
            serde_json::to_string(&g4).expect("fit serializes"),
            serde_json::to_string(&g2).expect("fit serializes"),
            serde_json::to_string(&rad).expect("fit serializes"),
            serde_json::to_string(&opp).expect("fit serializes"),
        ];
        let identical = *baselines.get_or_insert_with(|| rendered.clone()) == rendered;
        check(&format!("fits @{t} threads vs first thread count"), identical);
        println!(
            "  fits     @{t} thread(s)   gravity4 {g4_ns:>12} ns   gravity2 {g2_ns:>9} ns   radiation {rad_ns:>9} ns   opportunities {opp_ns:>9} ns   identical: {identical}"
        );
        fits_threads.insert(
            t.to_string(),
            serde_json::json!({
                "gravity4_ns": g4_ns,
                "gravity2_ns": g2_ns,
                "radiation_ns": rad_ns,
                "opportunities_ns": opp_ns,
                "identical": identical,
            }),
        );
    }
    // Columnar single-constant fits vs their pre-columnar references.
    let (rad_ref_ns, rad_ref) = best_of(&stopwatch, "fit/radiation/reference", 2, || {
        RadiationFit::fit(obs).expect("radiation reference")
    });
    let (opp_ref_ns, opp_ref) = best_of(&stopwatch, "fit/opportunities/reference", 2, || {
        OpportunitiesFit::fit(obs).expect("opportunities reference")
    });
    let rad_identical = check(
        "radiation columnar vs reference",
        report.radiation.c.to_bits() == rad_ref.c.to_bits() && report.radiation.n_used == rad_ref.n_used,
    );
    let opp_identical = check(
        "opportunities columnar vs reference",
        report.opportunities.c.to_bits() == opp_ref.c.to_bits()
            && report.opportunities.n_used == opp_ref.n_used,
    );
    println!(
        "  fits     radiation reference {rad_ref_ns:>9} ns (identical: {rad_identical})   opportunities reference {opp_ref_ns:>9} ns (identical: {opp_identical})"
    );

    let notes = serde_json::json!({
        "n_users": ds.n_users(),
        "n_tweets": ds.n_tweets(),
        "paper_scale_users": PAPER_USERS,
        "quick": quick,
        "host_parallelism": host,
        "threads_tested": thread_counts,
        "generate_ns": generate_ns,
        "format": {
            "rows_bytes": rows_bytes_len(&ds),
            "columnar_bytes": cols_bytes.len(),
            "encode_rows_ns": encode_rows_ns,
            "encode_columnar_ns": encode_cols_ns,
            "load": {
                "rows_ns": load_rows_ns,
                "columnar_ns": load_cols_ns,
                "speedup": load_speedup,
                "identical": load_identical,
            },
        },
        "population": { "elapsed_ns": population_ns, "pooled_r": pooled_r },
        "trips": {
            "n_trips": od_reference.total(),
            "reference_rows_ns": trips_ref_ns,
            "threads": trips_threads,
        },
        "fits": {
            "n_observations": obs.len(),
            "threads": fits_threads,
            "radiation_reference_ns": rad_ref_ns,
            "opportunities_reference_ns": opp_ref_ns,
            "radiation_identical": rad_identical,
            "opportunities_identical": opp_identical,
        },
    });
    if let Err(e) = emit_bench_metrics_to(BENCH_PAPERSCALE_PATH, "paperscale", notes) {
        eprintln!("failed to write {BENCH_PAPERSCALE_PATH}: {e}");
        std::process::exit(1);
    }
    println!();
    println!("wrote {BENCH_PAPERSCALE_PATH}");
    if mismatch {
        eprintln!("error: a stage produced output differing from its reference");
        std::process::exit(1);
    }
}

/// Size of the row-struct encoding without keeping the buffer alive
/// (the actual bytes were dropped after the load stage).
fn rows_bytes_len(ds: &TweetDataset) -> usize {
    binary::HEADER_BYTES + ds.n_tweets() * binary::RECORD_BYTES
}
