//! Old-vs-new kernel benchmark for the geometry cache PR.
//!
//! Times the two hot-path kernels against their pre-cache references,
//! checks byte-equality of the outputs, and records the results into
//! `BENCH_kernels.json` under the `"kernels"` key:
//!
//! * **pairwise** — building the shared pair geometry
//!   ([`PairGeometry::build`]: `TrigPoint` triangle + mirrored rank
//!   rows) vs the pre-PR construction (per-origin rows of scalar
//!   `haversine_km` over *both* triangles, then a sort — the loop
//!   `InterveningPopulation::build` and the epidemic network each ran
//!   before the cache existed). Measured at the paper's own scale
//!   (n = 20 areas, batched) and on a larger scatter, plus the isolated
//!   triangle kernel ([`pairwise_km`] vs [`pairwise_km_direct`]).
//! * **gravity-grid** — `Gravity4Fit::fit_grid` (columnar `FitColumns`
//!   + closed-form run moments) vs `Gravity4Fit::fit_grid_reference`
//!   (the pre-columnar per-observation loop), at 1/2/4/8 worker
//!   threads.
//!
//! ```text
//! cargo run --release -p tweetmob-bench --bin kernels_bench
//! TWEETMOB_KERNELS_QUICK=1 cargo run --release -p tweetmob-bench --bin kernels_bench
//! ```
//!
//! Quick mode shrinks the scatter and the thread list for CI. Timings
//! are best-of-N over repeated runs to cut scheduler noise. The process
//! exits 1 if any new-kernel output differs from its reference by even
//! one bit — speed regressions are asserted by the CI job over the
//! emitted JSON, not here, so a noisy laptop run still records honest
//! numbers.

use tweetmob_bench::{emit_bench_metrics_to, print_header, standard_dataset, BENCH_KERNELS_PATH};
use tweetmob_core::{Experiment, Scale};
use tweetmob_geo::{haversine_km, pairwise_km, pairwise_km_direct, PairGeometry, Point};
use tweetmob_models::{Gravity4Fit, GravityGrid};
use tweetmob_obs::MetricsRegistry;

/// Runs `run` once as warm-up, then `reps` timed repetitions under the
/// private stopwatch; returns the fastest repetition's nanoseconds
/// (the span's `min_ns`) and the last result. `name` must be unique
/// per measurement so reps from different kernels never share a span.
fn best_of<T>(
    stopwatch: &MetricsRegistry,
    name: &str,
    reps: usize,
    mut run: impl FnMut() -> T,
) -> (u64, T) {
    let mut result = run(); // warm-up
    for _ in 0..reps.max(1) {
        let _timer = stopwatch.span(name);
        result = run();
    }
    let best = stopwatch.span_stat(name).map_or(u64::MAX, |s| s.min_ns);
    (best, result)
}

fn speedup(old_ns: u64, new_ns: u64) -> f64 {
    if new_ns > 0 {
        old_ns as f64 / new_ns as f64
    } else {
        0.0
    }
}

/// Deterministic point scatter over the Australian bounding box (the
/// same LCG the geo cache tests use, so no RNG dependency).
fn scatter(count: usize, seed: u64) -> Vec<Point> {
    let mut k = seed;
    let mut next = |lo: f64, hi: f64| {
        k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
        lo + (k >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    };
    (0..count)
        .map(|_| Point::new_unchecked(next(-44.0, -10.0), next(113.0, 154.0)))
        .collect()
}

/// The pre-PR pair-geometry construction, verbatim: per-origin rank
/// rows via scalar `haversine_km` over both triangles, sorted.
fn pre_pr_rows(points: &[Point]) -> Vec<Vec<(f64, usize)>> {
    let n = points.len();
    (0..n)
        .map(|i| {
            let mut row: Vec<(f64, usize)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| (haversine_km(points[i], points[j]), j))
                .collect();
            row.sort_by(|a, b| a.0.total_cmp(&b.0));
            row
        })
        .collect()
}

/// Bit-and-order equality between the cache's rank rows and the pre-PR
/// rows.
fn rows_identical(geo: &PairGeometry, rows: &[Vec<(f64, usize)>]) -> bool {
    geo.len() == rows.len()
        && (0..geo.len()).all(|i| {
            let a = geo.ranked(i);
            let b = &rows[i];
            a.len() == b.len()
                && a.iter()
                    .zip(b.iter())
                    .all(|(x, y)| x.0.to_bits() == y.0.to_bits() && x.1 == y.1)
        })
}

fn main() {
    let quick = std::env::var_os("TWEETMOB_KERNELS_QUICK").is_some();
    let (cfg, ds) = standard_dataset();
    print_header(
        if quick {
            "KERNELS BENCH (quick) — geometry cache vs scalar reference"
        } else {
            "KERNELS BENCH — geometry cache vs scalar reference"
        },
        &cfg,
        &ds,
    );
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Private always-on stopwatch, the same idiom as
    // `measure_instrumentation_overhead`: wall-clock stays inside
    // `tweetmob-obs` and out of any result-producing path.
    let stopwatch = MetricsRegistry::new();
    let mut mismatch = false;

    // --- Kernel 1a: construction at the paper's scale (n = 20) --------
    // One build is microseconds, so a rep is a batch of builds and the
    // reported ns are per build.
    let paper_points = scatter(20, 0xA5);
    let batch: u32 = if quick { 500 } else { 2000 };
    let (paper_old_ns, paper_rows) = best_of(&stopwatch, "paper/pre_pr", 3, || {
        let mut rows = Vec::new();
        for _ in 0..batch {
            rows = pre_pr_rows(&paper_points);
        }
        rows
    });
    let (paper_new_ns, paper_geo) = best_of(&stopwatch, "paper/cache", 3, || {
        let mut geo = PairGeometry::build(&paper_points[..1]);
        for _ in 0..batch {
            geo = PairGeometry::build(&paper_points);
        }
        geo
    });
    let paper_identical = rows_identical(&paper_geo, &paper_rows);
    mismatch |= !paper_identical;
    let (paper_old_ns, paper_new_ns) = (
        paper_old_ns / u64::from(batch),
        paper_new_ns / u64::from(batch),
    );
    println!(
        "  construction @ paper scale (20 areas)   pre-PR {paper_old_ns:>9} ns/build   cache {paper_new_ns:>9} ns/build   speedup {:>5.2}x   identical: {paper_identical}",
        speedup(paper_old_ns, paper_new_ns),
    );

    // --- Kernel 1b: construction on a larger scatter ------------------
    let n_points = if quick { 400 } else { 1000 };
    let points = scatter(n_points, 0xA5);
    let (cons_old_ns, cons_rows) = best_of(&stopwatch, "construction/pre_pr", 5, || {
        pre_pr_rows(&points)
    });
    let (cons_new_ns, cons_geo) = best_of(&stopwatch, "construction/cache", 5, || {
        PairGeometry::build(&points)
    });
    let cons_identical = rows_identical(&cons_geo, &cons_rows);
    mismatch |= !cons_identical;
    println!(
        "  construction ({n_points} pts)   pre-PR {cons_old_ns:>12} ns   cache {cons_new_ns:>12} ns   speedup {:>5.2}x   identical: {cons_identical}",
        speedup(cons_old_ns, cons_new_ns),
    );

    // --- Kernel 1c: the isolated triangle kernel ----------------------
    let (direct_ns, direct_tri) = best_of(&stopwatch, "triangle/direct", 5, || {
        pairwise_km_direct(&points)
    });
    let (trig_ns, trig_tri) = best_of(&stopwatch, "triangle/trig", 5, || pairwise_km(&points));
    let tri_identical = direct_tri.len() == trig_tri.len()
        && direct_tri
            .iter()
            .zip(&trig_tri)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    mismatch |= !tri_identical;
    println!(
        "  triangle kernel ({n_points} pts, {} pairs)   scalar {direct_ns:>12} ns   trig {trig_ns:>12} ns   speedup {:>5.2}x   identical: {tri_identical}",
        direct_tri.len(),
        speedup(direct_ns, trig_ns),
    );
    let pair_identical = paper_identical && cons_identical && tri_identical;
    let pairwise = serde_json::json!({
        "identical": pair_identical,
        "speedup": speedup(paper_old_ns, paper_new_ns),
        "paper_scale": {
            "n_points": 20,
            "builds_per_rep": batch,
            "old_ns": paper_old_ns,
            "new_ns": paper_new_ns,
            "speedup": speedup(paper_old_ns, paper_new_ns),
            "identical": paper_identical,
        },
        "construction": {
            "n_points": n_points,
            "old_ns": cons_old_ns,
            "new_ns": cons_new_ns,
            "speedup": speedup(cons_old_ns, cons_new_ns),
            "identical": cons_identical,
        },
        "triangle": {
            "n_points": n_points,
            "n_pairs": direct_tri.len(),
            "direct_ns": direct_ns,
            "trig_ns": trig_ns,
            "speedup": speedup(direct_ns, trig_ns),
            "identical": tri_identical,
        },
    });

    // --- Kernel 2: gravity 4-parameter grid search --------------------
    // Observations are assembled once, outside the timed region; both
    // fitters then chew the same slice over the default lattice.
    let exp = Experiment::new(&ds);
    let report = exp
        .mobility(Scale::National)
        .expect("mobility report on the standard dataset");
    let grid = GravityGrid::default();
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut per_thread = serde_json::Map::new();
    let mut baseline_fit: Option<String> = None;
    for &t in thread_counts {
        let (reference_ns, reference) =
            best_of(&stopwatch, &format!("gravity/{t}/reference"), 3, || {
                tweetmob_par::with_threads(t, || {
                    Gravity4Fit::fit_grid_reference(&report.observations, &grid)
                })
            });
        let (columnar_ns, columnar) =
            best_of(&stopwatch, &format!("gravity/{t}/columnar"), 3, || {
                tweetmob_par::with_threads(t, || Gravity4Fit::fit_grid(&report.observations, &grid))
            });
        let reference =
            serde_json::to_string(&reference.expect("reference grid fit")).expect("fit serializes");
        let columnar =
            serde_json::to_string(&columnar.expect("columnar grid fit")).expect("fit serializes");
        // Bit-identical to the reference at this thread count, and to
        // every other thread count's result.
        let identical = reference == columnar
            && *baseline_fit.get_or_insert_with(|| columnar.clone()) == columnar;
        mismatch |= !identical;
        println!(
            "  gravity-grid @{t} thread(s)   reference {reference_ns:>12} ns   columnar {columnar_ns:>12} ns   speedup {:>5.2}x   identical: {identical}",
            speedup(reference_ns, columnar_ns),
        );
        per_thread.insert(
            t.to_string(),
            serde_json::json!({
                "reference_ns": reference_ns,
                "columnar_ns": columnar_ns,
                "speedup": speedup(reference_ns, columnar_ns),
                "identical": identical,
            }),
        );
    }

    let notes = serde_json::json!({
        "pairwise": pairwise,
        "gravity_grid": {
            "n_observations": report.observations.len(),
            "threads": per_thread,
        },
        "threads_tested": thread_counts,
        "host_parallelism": host,
        "quick": quick,
        "n_users": ds.n_users(),
        "n_tweets": ds.n_tweets(),
    });
    if let Err(e) = emit_bench_metrics_to(BENCH_KERNELS_PATH, "kernels", notes) {
        eprintln!("failed to write {BENCH_KERNELS_PATH}: {e}");
        std::process::exit(1);
    }
    println!();
    println!("wrote {BENCH_KERNELS_PATH}");
    if mismatch {
        eprintln!("error: a kernel produced output differing from its scalar reference");
        std::process::exit(1);
    }
}
