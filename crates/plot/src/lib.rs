//! # tweetmob-plot
//!
//! Dependency-free SVG charts, sized for the paper's figures:
//!
//! * [`ScatterChart`] — log-log (or linear) scatter plots with multiple
//!   series, a `y = x` reference diagonal and decade ticks: Figs. 2–4.
//! * [`Heatmap`] — a log-colour raster for the Fig. 1 tweet-density map.
//!
//! Output is plain SVG text — no raster dependencies, diffable in tests,
//! and viewable in any browser. The `figures` regeneration binary in
//! `tweetmob-bench` uses this crate to write `figures/*.svg`.
//!
//! ## Example
//!
//! ```
//! use tweetmob_plot::{AxisKind, ScatterChart};
//!
//! let svg = ScatterChart::new("demo", "x", "y")
//!     .x_axis(AxisKind::Log)
//!     .y_axis(AxisKind::Log)
//!     .with_diagonal()
//!     .series("points", &[(1.0, 2.0), (10.0, 8.0), (100.0, 120.0)])
//!     .render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("demo"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod axes;
mod chart;
mod heatmap;
mod svg;

pub use axes::{Axis, AxisKind};
pub use chart::{ScatterChart, SeriesStyle};
pub use heatmap::Heatmap;
pub use svg::SvgCanvas;
