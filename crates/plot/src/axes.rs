//! Axis mapping: data coordinates → pixels, with tick generation.

/// Linear or logarithmic axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisKind {
    /// Linear interpolation between min and max.
    Linear,
    /// Base-10 logarithmic; requires positive bounds and drops
    /// non-positive samples.
    Log,
}

/// A one-dimensional axis: data range plus a pixel range.
#[derive(Debug, Clone)]
pub struct Axis {
    kind: AxisKind,
    data_min: f64,
    data_max: f64,
    px_min: f64,
    px_max: f64,
}

impl Axis {
    /// Builds an axis. For [`AxisKind::Log`] the data bounds are clamped
    /// to a positive floor; a degenerate range is widened symmetrically
    /// so projection never divides by zero.
    pub fn new(kind: AxisKind, data_min: f64, data_max: f64, px_min: f64, px_max: f64) -> Self {
        let (mut lo, mut hi) = match kind {
            AxisKind::Linear => (data_min, data_max),
            AxisKind::Log => (data_min.max(1e-12), data_max.max(1e-12)),
        };
        if !(hi > lo) {
            match kind {
                AxisKind::Linear => {
                    lo -= 0.5;
                    hi += 0.5;
                }
                AxisKind::Log => {
                    lo /= 2.0;
                    hi *= 2.0;
                }
            }
        }
        Self {
            kind,
            data_min: lo,
            data_max: hi,
            px_min,
            px_max,
        }
    }

    /// The (possibly adjusted) data bounds.
    pub fn data_bounds(&self) -> (f64, f64) {
        (self.data_min, self.data_max)
    }

    /// Projects a data value to pixels. Log axes return `None` for
    /// non-positive values (they have no position on the axis).
    pub fn project(&self, v: f64) -> Option<f64> {
        let t = match self.kind {
            AxisKind::Linear => (v - self.data_min) / (self.data_max - self.data_min),
            AxisKind::Log => {
                if v <= 0.0 {
                    return None;
                }
                (v.ln() - self.data_min.ln()) / (self.data_max.ln() - self.data_min.ln())
            }
        };
        Some(self.px_min + t * (self.px_max - self.px_min))
    }

    /// Tick positions in data space: decades for log axes, ~5 round steps
    /// for linear ones. Always inside the data bounds.
    pub fn ticks(&self) -> Vec<f64> {
        match self.kind {
            AxisKind::Log => {
                let lo = self.data_min.log10().ceil() as i32;
                let hi = self.data_max.log10().floor() as i32;
                (lo..=hi).map(|e| 10f64.powi(e)).collect()
            }
            AxisKind::Linear => {
                let span = self.data_max - self.data_min;
                let raw_step = span / 5.0;
                // Round to 1/2/5 × 10^k.
                let mag = 10f64.powf(raw_step.log10().floor());
                let norm = raw_step / mag;
                let step = if norm < 1.5 {
                    mag
                } else if norm < 3.5 {
                    2.0 * mag
                } else if norm < 7.5 {
                    5.0 * mag
                } else {
                    10.0 * mag
                };
                let start = (self.data_min / step).ceil() * step;
                let mut ticks = Vec::new();
                let mut v = start;
                while v <= self.data_max + step * 1e-9 {
                    ticks.push(v);
                    v += step;
                }
                ticks
            }
        }
    }

    /// Compact label for a tick value (`10^k` decades as `1e k`, linear
    /// values trimmed).
    pub fn tick_label(&self, v: f64) -> String {
        match self.kind {
            AxisKind::Log => {
                let e = v.log10().round() as i32;
                format!("1e{e}")
            }
            AxisKind::Linear => {
                if v.abs() >= 1e4 || (v != 0.0 && v.abs() < 1e-2) {
                    format!("{v:.1e}")
                } else {
                    let s = format!("{v:.2}");
                    s.trim_end_matches('0').trim_end_matches('.').to_string()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_projection_endpoints() {
        let a = Axis::new(AxisKind::Linear, 0.0, 10.0, 100.0, 200.0);
        assert_eq!(a.project(0.0), Some(100.0));
        assert_eq!(a.project(10.0), Some(200.0));
        assert_eq!(a.project(5.0), Some(150.0));
    }

    #[test]
    fn log_projection_is_decade_uniform() {
        let a = Axis::new(AxisKind::Log, 1.0, 100.0, 0.0, 100.0);
        assert!((a.project(1.0).unwrap() - 0.0).abs() < 1e-9);
        assert!((a.project(10.0).unwrap() - 50.0).abs() < 1e-9);
        assert!((a.project(100.0).unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(a.project(0.0), None);
        assert_eq!(a.project(-5.0), None);
    }

    #[test]
    fn inverted_pixel_range_supported() {
        // SVG y grows downward; charts pass px_min > px_max for y.
        let a = Axis::new(AxisKind::Linear, 0.0, 1.0, 300.0, 50.0);
        assert_eq!(a.project(0.0), Some(300.0));
        assert_eq!(a.project(1.0), Some(50.0));
    }

    #[test]
    fn degenerate_ranges_are_widened() {
        let lin = Axis::new(AxisKind::Linear, 3.0, 3.0, 0.0, 100.0);
        let (lo, hi) = lin.data_bounds();
        assert!(lo < 3.0 && hi > 3.0);
        assert!(lin.project(3.0).unwrap().is_finite());
        let log = Axis::new(AxisKind::Log, 5.0, 5.0, 0.0, 100.0);
        assert!(log.project(5.0).unwrap().is_finite());
    }

    #[test]
    fn log_ticks_are_decades() {
        let a = Axis::new(AxisKind::Log, 3.0, 5_000.0, 0.0, 1.0);
        assert_eq!(a.ticks(), vec![10.0, 100.0, 1_000.0]);
        assert_eq!(a.tick_label(100.0), "1e2");
    }

    #[test]
    fn linear_ticks_are_round_and_bounded() {
        let a = Axis::new(AxisKind::Linear, 0.0, 23.0, 0.0, 1.0);
        let ticks = a.ticks();
        assert!(ticks.len() >= 4 && ticks.len() <= 7, "{ticks:?}");
        for t in &ticks {
            assert!(*t >= 0.0 && *t <= 23.0);
        }
        assert_eq!(a.tick_label(5.0), "5");
        assert_eq!(a.tick_label(2.5), "2.5");
    }

    #[test]
    fn log_bounds_clamped_positive() {
        let a = Axis::new(AxisKind::Log, -3.0, 10.0, 0.0, 1.0);
        let (lo, _) = a.data_bounds();
        assert!(lo > 0.0);
    }
}
