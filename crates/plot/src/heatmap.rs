//! Log-colour heatmaps for the Fig. 1 density map.

use crate::svg::SvgCanvas;

/// A rectangular heatmap over cell counts, rendered with a log colour
/// ramp (the paper's 10⁰…10⁵ scale).
pub struct Heatmap {
    title: String,
    ncols: usize,
    nrows: usize,
    /// Row-major counts, row 0 = south (rendered at the bottom).
    counts: Vec<u64>,
}

impl Heatmap {
    /// Builds a heatmap from row-major counts (row 0 southmost).
    ///
    /// # Panics
    ///
    /// If `counts.len() != ncols * nrows` or either dimension is zero.
    pub fn new(title: &str, ncols: usize, nrows: usize, counts: Vec<u64>) -> Self {
        assert!(ncols > 0 && nrows > 0, "heatmap needs positive dimensions");
        assert_eq!(counts.len(), ncols * nrows, "counts shape mismatch");
        Self {
            title: title.to_string(),
            ncols,
            nrows,
            counts,
        }
    }

    /// Maps `log10(count)/log10(max)` to a white→orange→dark-red ramp
    /// (hex colour). Zero counts map to a pale ocean blue so land/sea
    /// structure reads like the paper's figure.
    pub fn color_for(count: u64, max: u64) -> String {
        if count == 0 {
            return "#eef4fb".to_string();
        }
        let t = if max <= 1 {
            1.0
        } else {
            (count as f64).log10() / (max as f64).log10()
        }
        .clamp(0.0, 1.0);
        // Piecewise ramp: white (t=0) → orange (t=0.5) → dark red (t=1).
        let (r, g, b) = if t < 0.5 {
            let u = t / 0.5;
            (
                255.0,
                255.0 - u * (255.0 - 165.0),
                255.0 - u * 255.0,
            )
        } else {
            let u = (t - 0.5) / 0.5;
            (255.0 - u * (255.0 - 139.0), 165.0 - u * 165.0, 0.0)
        };
        format!("#{:02x}{:02x}{:02x}", r as u8, g as u8, b as u8)
    }

    /// Renders the SVG (one rect per non-empty cell over an ocean
    /// background — sparse rasters stay small).
    pub fn render(self) -> String {
        const CELL_PX: f64 = 4.0;
        const MARGIN: f64 = 28.0;
        let width = self.ncols as f64 * CELL_PX + 2.0 * MARGIN;
        let height = self.nrows as f64 * CELL_PX + 2.0 * MARGIN + 16.0;
        let mut c = SvgCanvas::new(width, height);
        c.text(width / 2.0, 18.0, &self.title, 14.0, "middle", 0.0);
        let max = self.counts.iter().copied().max().unwrap_or(0);
        // Ocean backdrop.
        c.rect(
            MARGIN,
            MARGIN + 16.0 - CELL_PX, // align with top row
            self.ncols as f64 * CELL_PX,
            self.nrows as f64 * CELL_PX,
            "#eef4fb",
            "#999999",
        );
        for row in 0..self.nrows {
            for col in 0..self.ncols {
                let count = self.counts[row * self.ncols + col];
                if count == 0 {
                    continue;
                }
                // Row 0 is south → render from the bottom.
                let y = MARGIN + 16.0 + (self.nrows - 1 - row) as f64 * CELL_PX - CELL_PX;
                let x = MARGIN + col as f64 * CELL_PX;
                c.rect(x, y, CELL_PX, CELL_PX, &Self::color_for(count, max), "none");
            }
        }
        c.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_ramp_endpoints() {
        assert_eq!(Heatmap::color_for(0, 100), "#eef4fb");
        // Max count is the darkest ramp colour.
        assert_eq!(Heatmap::color_for(100, 100), "#8b0000");
        // A single count on a big scale is near-white.
        let light = Heatmap::color_for(1, 100_000);
        assert_eq!(light, "#ffffff");
    }

    #[test]
    fn color_ramp_monotone_darkening() {
        // Red channel never increases along the ramp.
        let max = 1_000_000u64;
        let mut prev_r = 256i32;
        for c in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let hex = Heatmap::color_for(c, max);
            let r = i32::from_str_radix(&hex[1..3], 16).unwrap();
            assert!(r <= prev_r, "count {c}: {hex}");
            prev_r = r;
        }
    }

    #[test]
    fn renders_only_nonempty_cells() {
        let mut counts = vec![0u64; 20 * 10];
        counts[5] = 3;
        counts[42] = 99;
        let svg = Heatmap::new("map", 20, 10, counts).render();
        // background + ocean + 2 cells = 4 rects.
        assert_eq!(svg.matches("<rect").count(), 4);
        assert!(svg.contains("map"));
    }

    #[test]
    #[should_panic(expected = "counts shape mismatch")]
    fn wrong_shape_panics() {
        Heatmap::new("m", 3, 3, vec![0; 8]);
    }
}
