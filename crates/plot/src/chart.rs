//! Scatter/series charts with the paper's log-log layout.

use crate::axes::{Axis, AxisKind};
use crate::svg::SvgCanvas;

const WIDTH: f64 = 560.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 16.0;
const MARGIN_TOP: f64 = 36.0;
const MARGIN_BOTTOM: f64 = 52.0;

/// Visual style of one series.
#[derive(Debug, Clone, Copy)]
pub struct SeriesStyle {
    /// CSS colour.
    pub color: &'static str,
    /// Marker radius, px.
    pub radius: f64,
    /// Marker fill opacity (the paper's grey clouds are translucent).
    pub opacity: f64,
    /// Whether consecutive points are joined by a line (PDF curves).
    pub joined: bool,
}

/// The default palette, cycled across series.
const PALETTE: [SeriesStyle; 4] = [
    SeriesStyle {
        color: "#888888",
        radius: 2.2,
        opacity: 0.45,
        joined: false,
    },
    SeriesStyle {
        color: "#d62728",
        radius: 3.5,
        opacity: 0.95,
        joined: false,
    },
    SeriesStyle {
        color: "#1f77b4",
        radius: 3.0,
        opacity: 0.9,
        joined: true,
    },
    SeriesStyle {
        color: "#2ca02c",
        radius: 3.0,
        opacity: 0.9,
        joined: true,
    },
];

struct Series {
    label: String,
    points: Vec<(f64, f64)>,
    style: SeriesStyle,
}

/// A builder for one chart panel.
pub struct ScatterChart {
    title: String,
    x_label: String,
    y_label: String,
    x_kind: AxisKind,
    y_kind: AxisKind,
    diagonal: bool,
    series: Vec<Series>,
}

impl ScatterChart {
    /// Starts a chart with a title and axis labels.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            x_kind: AxisKind::Linear,
            y_kind: AxisKind::Linear,
            diagonal: false,
            series: Vec::new(),
        }
    }

    /// Sets the x-axis kind.
    pub fn x_axis(mut self, kind: AxisKind) -> Self {
        self.x_kind = kind;
        self
    }

    /// Sets the y-axis kind.
    pub fn y_axis(mut self, kind: AxisKind) -> Self {
        self.y_kind = kind;
        self
    }

    /// Draws the `y = x` reference diagonal (the paper's red line).
    pub fn with_diagonal(mut self) -> Self {
        self.diagonal = true;
        self
    }

    /// Adds a series with the next palette style.
    pub fn series(self, label: &str, points: &[(f64, f64)]) -> Self {
        let style = PALETTE[self.series.len() % PALETTE.len()];
        self.series_with_style(label, points, style)
    }

    /// Adds a series with an explicit style.
    pub fn series_with_style(
        mut self,
        label: &str,
        points: &[(f64, f64)],
        style: SeriesStyle,
    ) -> Self {
        self.series.push(Series {
            label: label.to_string(),
            points: points.to_vec(),
            style,
        });
        self
    }

    /// Number of series added so far.
    pub fn n_series(&self) -> usize {
        self.series.len()
    }

    fn data_bounds(&self) -> ((f64, f64), (f64, f64)) {
        let mut xb = (f64::INFINITY, f64::NEG_INFINITY);
        let mut yb = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for &(x, y) in &s.points {
                let x_ok = self.x_kind == AxisKind::Linear || x > 0.0;
                let y_ok = self.y_kind == AxisKind::Linear || y > 0.0;
                if x.is_finite() && y.is_finite() && x_ok && y_ok {
                    xb.0 = xb.0.min(x);
                    xb.1 = xb.1.max(x);
                    yb.0 = yb.0.min(y);
                    yb.1 = yb.1.max(y);
                }
            }
        }
        if !xb.0.is_finite() {
            xb = (0.0, 1.0);
            yb = (0.0, 1.0);
        }
        (xb, yb)
    }

    /// Renders the SVG document.
    pub fn render(self) -> String {
        let ((mut x_lo, mut x_hi), (mut y_lo, mut y_hi)) = self.data_bounds();
        if self.diagonal {
            // A shared range makes the diagonal meaningful.
            let lo = x_lo.min(y_lo);
            let hi = x_hi.max(y_hi);
            (x_lo, y_lo, x_hi, y_hi) = (lo, lo, hi, hi);
        }
        let x_axis = Axis::new(self.x_kind, x_lo, x_hi, MARGIN_LEFT, WIDTH - MARGIN_RIGHT);
        let y_axis = Axis::new(self.y_kind, y_lo, y_hi, HEIGHT - MARGIN_BOTTOM, MARGIN_TOP);

        let mut c = SvgCanvas::new(WIDTH, HEIGHT);
        // Frame.
        c.rect(
            MARGIN_LEFT,
            MARGIN_TOP,
            WIDTH - MARGIN_LEFT - MARGIN_RIGHT,
            HEIGHT - MARGIN_TOP - MARGIN_BOTTOM,
            "none",
            "#333333",
        );
        c.text(WIDTH / 2.0, 22.0, &self.title, 15.0, "middle", 0.0);
        c.text(WIDTH / 2.0, HEIGHT - 14.0, &self.x_label, 12.0, "middle", 0.0);
        c.text(16.0, HEIGHT / 2.0, &self.y_label, 12.0, "middle", -90.0);

        // Ticks + grid.
        for t in x_axis.ticks() {
            if let Some(px) = x_axis.project(t) {
                c.line(px, HEIGHT - MARGIN_BOTTOM, px, MARGIN_TOP, "#eeeeee", 0.8);
                c.line(
                    px,
                    HEIGHT - MARGIN_BOTTOM,
                    px,
                    HEIGHT - MARGIN_BOTTOM + 4.0,
                    "#333333",
                    1.0,
                );
                c.text(
                    px,
                    HEIGHT - MARGIN_BOTTOM + 18.0,
                    &x_axis.tick_label(t),
                    10.0,
                    "middle",
                    0.0,
                );
            }
        }
        for t in y_axis.ticks() {
            if let Some(py) = y_axis.project(t) {
                c.line(MARGIN_LEFT, py, WIDTH - MARGIN_RIGHT, py, "#eeeeee", 0.8);
                c.line(MARGIN_LEFT - 4.0, py, MARGIN_LEFT, py, "#333333", 1.0);
                c.text(
                    MARGIN_LEFT - 7.0,
                    py + 3.5,
                    &y_axis.tick_label(t),
                    10.0,
                    "end",
                    0.0,
                );
            }
        }

        // Reference diagonal (projected through the shared range).
        if self.diagonal {
            if let (Some(x1), Some(y1), Some(x2), Some(y2)) = (
                x_axis.project(x_lo),
                y_axis.project(x_lo),
                x_axis.project(x_hi),
                y_axis.project(x_hi),
            ) {
                c.dashed_line(x1, y1, x2, y2, "#d62728", 1.2);
            }
        }

        // Series.
        for s in &self.series {
            let mut prev: Option<(f64, f64)> = None;
            for &(x, y) in &s.points {
                let (Some(px), Some(py)) = (x_axis.project(x), y_axis.project(y)) else {
                    prev = None;
                    continue;
                };
                if s.style.joined {
                    if let Some((qx, qy)) = prev {
                        c.line(qx, qy, px, py, s.style.color, 1.4);
                    }
                    prev = Some((px, py));
                }
                c.circle(px, py, s.style.radius, s.style.color, s.style.opacity);
            }
        }

        // Legend (top-left inside the frame).
        for (i, s) in self.series.iter().enumerate() {
            let y = MARGIN_TOP + 16.0 + i as f64 * 16.0;
            c.circle(MARGIN_LEFT + 12.0, y - 3.5, 4.0, s.style.color, 1.0);
            c.text(MARGIN_LEFT + 22.0, y, &s.label, 11.0, "start", 0.0);
        }
        c.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scatter_with_all_elements() {
        let svg = ScatterChart::new("Fig X", "estimated", "extracted")
            .x_axis(AxisKind::Log)
            .y_axis(AxisKind::Log)
            .with_diagonal()
            .series("pairs", &[(1.0, 1.5), (10.0, 9.0), (500.0, 620.0)])
            .series("binned means", &[(3.0, 3.2), (100.0, 95.0)])
            .render();
        assert!(svg.contains("Fig X"));
        assert!(svg.contains("estimated"));
        assert!(svg.contains("pairs"));
        assert!(svg.contains("binned means"));
        assert!(svg.contains("stroke-dasharray")); // the diagonal
        assert!(svg.matches("<circle").count() >= 5); // points + legend dots
    }

    #[test]
    fn nonpositive_points_are_skipped_on_log_axes() {
        let svg = ScatterChart::new("t", "x", "y")
            .x_axis(AxisKind::Log)
            .y_axis(AxisKind::Log)
            .series("s", &[(0.0, 5.0), (-2.0, 1.0), (10.0, 10.0)])
            .render();
        // One data point + one legend dot.
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn empty_chart_still_renders() {
        let svg = ScatterChart::new("empty", "x", "y").render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("empty"));
    }

    #[test]
    fn joined_series_draws_segments() {
        let svg = ScatterChart::new("t", "x", "y")
            .series_with_style(
                "pdf",
                &[(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)],
                SeriesStyle {
                    color: "#1f77b4",
                    radius: 2.0,
                    opacity: 1.0,
                    joined: true,
                },
            )
            .render();
        // 2 joining segments + frame ticks; count colored strokes.
        assert!(svg.matches(r##"stroke="#1f77b4""##).count() >= 2);
    }

    #[test]
    fn diagonal_forces_shared_bounds() {
        // x spans 1..10, y spans 100..1000; with a diagonal both axes
        // share 1..1000, so 1e2 appears as a tick on the x axis too.
        let svg = ScatterChart::new("t", "x", "y")
            .x_axis(AxisKind::Log)
            .y_axis(AxisKind::Log)
            .with_diagonal()
            .series("s", &[(1.0, 100.0), (10.0, 1000.0)])
            .render();
        assert!(svg.matches(">1e2<").count() >= 2, "{svg}");
    }
}
