//! A minimal SVG writer: shapes in, escaped text out.

use std::fmt::Write as _;

/// An SVG document under construction (pixel coordinates, origin
/// top-left).
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    body: String,
}

/// Escapes the five XML-special characters.
pub(crate) fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

impl SvgCanvas {
    /// An empty canvas of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        Self {
            width,
            height,
            body: String::new(),
        }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// A filled, stroked rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{}" stroke="{}"/>"#,
            escape(fill),
            escape(stroke)
        );
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, opacity: f64) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{}" fill-opacity="{opacity:.2}"/>"#,
            escape(fill)
        );
    }

    /// A straight line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{}" stroke-width="{width:.2}"/>"#,
            escape(stroke)
        );
    }

    /// A dashed line segment (used for reference diagonals).
    pub fn dashed_line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{}" stroke-width="{width:.2}" stroke-dasharray="6 4"/>"#,
            escape(stroke)
        );
    }

    /// Text anchored per `anchor` ("start" | "middle" | "end"), optionally
    /// rotated by `rotate_deg` about its anchor point.
    pub fn text(
        &mut self,
        x: f64,
        y: f64,
        content: &str,
        size_px: f64,
        anchor: &str,
        rotate_deg: f64,
    ) {
        let transform = if rotate_deg != 0.0 {
            format!(r#" transform="rotate({rotate_deg:.1} {x:.2} {y:.2})""#)
        } else {
            String::new()
        };
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size_px:.1}" font-family="sans-serif" text-anchor="{}"{transform}>{}</text>"#,
            escape(anchor),
            escape(content)
        );
    }

    /// Finishes the document.
    pub fn render(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_document() {
        let mut c = SvgCanvas::new(200.0, 100.0);
        c.rect(0.0, 0.0, 10.0, 10.0, "red", "none");
        c.circle(50.0, 50.0, 3.0, "#1f77b4", 0.5);
        c.line(0.0, 0.0, 200.0, 100.0, "black", 1.0);
        c.text(100.0, 50.0, "hello", 12.0, "middle", 0.0);
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("hello"));
        // Every opening tag family used is present exactly as emitted.
        assert_eq!(svg.matches("<rect").count(), 2); // background + ours
    }

    #[test]
    fn escapes_xml_special_characters() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.text(0.0, 0.0, "a<b & \"c\" > 'd'", 10.0, "start", 0.0);
        let svg = c.render();
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot; &gt; &apos;d&apos;"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn rotation_emits_transform() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.text(5.0, 5.0, "y", 10.0, "middle", -90.0);
        assert!(c.render().contains("rotate(-90.0 5.00 5.00)"));
    }

    #[test]
    fn dashed_line_has_dasharray() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.dashed_line(0.0, 0.0, 10.0, 10.0, "red", 1.0);
        assert!(c.render().contains("stroke-dasharray"));
    }
}
