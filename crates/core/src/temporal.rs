//! Temporal responsiveness (DESIGN.md experiment E12).
//!
//! The paper's whole motivation is *timeliness*: censuses lag by years,
//! while tweets arrive continuously, so a Twitter-based estimate could
//! react to an outbreak "in an emergent situation". That only matters if
//! a *short* window of tweets already carries the population signal.
//! This module splits the collection period into equal windows, repeats
//! the Fig. 3 population estimation inside each, and reports (a) how well
//! each window alone correlates with census and (b) how stable the
//! window estimates are against the full-period estimate.

use crate::areaset::{AreaSet, Scale};
use crate::experiment::ExperimentError;
use crate::population::estimate_population;
use serde::Serialize;
use tweetmob_data::{Timestamp, TweetDataset};
use tweetmob_geo::GridIndex;
use tweetmob_stats::correlation::{log_pearson, Correlation};
use tweetmob_stats::distributions::ks_two_sample;

/// Population estimation inside one time window.
#[derive(Debug, Clone, Serialize)]
pub struct WindowResult {
    /// Window start (inclusive).
    pub start: Timestamp,
    /// Window end (inclusive).
    pub end: Timestamp,
    /// Tweets inside the window.
    pub n_tweets: usize,
    /// Unique users inside the window.
    pub n_users: usize,
    /// Correlation of the window's rescaled estimates vs census.
    pub vs_census: Correlation,
    /// Correlation of the window's user counts vs the full-period
    /// counts — the stability of the estimator over time.
    pub vs_full_period: Correlation,
}

/// The full temporal-stability result.
#[derive(Debug, Clone, Serialize)]
pub struct TemporalStability {
    /// Scale analysed.
    pub scale: &'static str,
    /// Per-window results, chronological.
    pub windows: Vec<WindowResult>,
}

impl TemporalStability {
    /// The lowest per-window census correlation — the worst case for a
    /// "one window is enough" claim.
    pub fn worst_census_r(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| w.vs_census.r)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Two-sample KS test of waiting-time stationarity: compares the
/// inter-tweet gap distribution of the first and second halves of the
/// collection window. A small KS statistic means the tweeting dynamics
/// the paper characterises in Fig. 2(b) are stable over the collection
/// period — a prerequisite for treating any sub-window as
/// representative.
///
/// Each user contributes at most 32 gaps per half. Without the cap a
/// single hyper-active account (tens of thousands of sub-minute gaps,
/// all landing in whichever half its activity burst occupies) dominates
/// the pooled sample, and the test measures *which half holds the
/// whales* instead of whether the population's dynamics drift.
///
/// Returns `(ks_statistic, p_value)`.
///
/// # Errors
///
/// [`ExperimentError::Stats`] when either half has no waiting times.
pub fn waiting_time_stationarity(dataset: &TweetDataset) -> Result<(f64, f64), ExperimentError> {
    const MAX_GAPS_PER_USER: usize = 32;
    let (mut t_min, mut t_max) = (i64::MAX, i64::MIN);
    for t in dataset.times() {
        t_min = t_min.min(t.as_secs());
        t_max = t_max.max(t.as_secs());
    }
    let mid = Timestamp::from_secs(t_min + (t_max - t_min) / 2);
    let first = dataset.filter_time_range(Timestamp::from_secs(t_min), mid);
    let second = dataset.filter_time_range(mid.plus_secs(1), Timestamp::from_secs(t_max));
    let capped_gaps = |ds: &TweetDataset| -> Vec<f64> {
        let mut out = Vec::new();
        for view in ds.iter_users() {
            for w in view.times.windows(2).take(MAX_GAPS_PER_USER) {
                out.push(w[1].seconds_since(w[0]) as f64);
            }
        }
        out
    };
    let a = capped_gaps(&first);
    let b = capped_gaps(&second);
    Ok(ks_two_sample(&a, &b).map_err(tweetmob_stats::StatsError::from)?)
}

/// Splits the dataset's observed time span into `n_windows` equal
/// windows and repeats the population estimation at `scale` inside each.
///
/// # Errors
///
/// [`ExperimentError::Stats`] when a window is too empty to correlate;
/// windows are all-or-nothing so the result is rectangular.
///
/// # Panics
///
/// If `n_windows == 0` or the dataset is empty.
pub fn temporal_stability(
    dataset: &TweetDataset,
    scale: Scale,
    n_windows: usize,
) -> Result<TemporalStability, ExperimentError> {
    assert!(n_windows > 0, "need at least one window");
    assert!(!dataset.is_empty(), "dataset is empty");
    let (mut t_min, mut t_max) = (i64::MAX, i64::MIN);
    for t in dataset.times() {
        t_min = t_min.min(t.as_secs());
        t_max = t_max.max(t.as_secs());
    }
    let span = (t_max - t_min).max(1);
    let areas = AreaSet::of_scale(scale);

    // Full-period reference counts.
    let full_index = GridIndex::from_columns(dataset.lats(), dataset.lons(), 0.2);
    let full = estimate_population(dataset, &full_index, &areas)?;
    let full_counts: Vec<f64> = full.areas.iter().map(|a| a.twitter_users as f64).collect();

    let mut windows = Vec::with_capacity(n_windows);
    for k in 0..n_windows {
        let start = Timestamp::from_secs(t_min + span * k as i64 / n_windows as i64);
        let end = if k + 1 == n_windows {
            Timestamp::from_secs(t_max)
        } else {
            Timestamp::from_secs(t_min + span * (k + 1) as i64 / n_windows as i64 - 1)
        };
        let slice = dataset.filter_time_range(start, end);
        let index = GridIndex::from_columns(slice.lats(), slice.lons(), 0.2);
        let pop = estimate_population(&slice, &index, &areas)?;
        let counts: Vec<f64> = pop.areas.iter().map(|a| a.twitter_users as f64).collect();
        let vs_full = log_pearson(&counts, &full_counts)?;
        windows.push(WindowResult {
            start,
            end,
            n_tweets: slice.n_tweets(),
            n_users: slice.n_users(),
            vs_census: pop.correlation,
            vs_full_period: vs_full,
        });
    }
    Ok(TemporalStability {
        scale: scale.name(),
        windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use tweetmob_synth::{GeneratorConfig, TweetGenerator};

    fn medium() -> &'static TweetDataset {
        static DS: OnceLock<TweetDataset> = OnceLock::new();
        DS.get_or_init(|| TweetGenerator::new(GeneratorConfig::default()).generate())
    }

    #[test]
    fn monthly_windows_carry_the_population_signal() {
        // 8 windows ≈ the paper's 8 collection months. Every single
        // month must already correlate strongly with census at the
        // national scale — this is the "responsive estimation" claim.
        let stability = temporal_stability(medium(), Scale::National, 8).unwrap();
        assert_eq!(stability.windows.len(), 8);
        for w in &stability.windows {
            assert!(w.n_tweets > 0, "empty window");
            assert!(
                w.vs_census.r > 0.6,
                "window starting {} has census r = {}",
                w.start,
                w.vs_census.r
            );
            assert!(
                w.vs_full_period.r > 0.9,
                "window starting {} unstable: r = {}",
                w.start,
                w.vs_full_period.r
            );
        }
        assert!(stability.worst_census_r() > 0.6);
    }

    #[test]
    fn windows_partition_the_span() {
        let stability = temporal_stability(medium(), Scale::National, 4).unwrap();
        let total: usize = stability.windows.iter().map(|w| w.n_tweets).sum();
        assert_eq!(total, medium().n_tweets());
        // Chronological and non-overlapping.
        for pair in stability.windows.windows(2) {
            assert!(pair[0].end < pair[1].start);
        }
    }

    #[test]
    fn single_window_equals_full_period() {
        let stability = temporal_stability(medium(), Scale::National, 1).unwrap();
        let w = &stability.windows[0];
        assert_eq!(w.n_tweets, medium().n_tweets());
        // Perfect self-correlation.
        assert!((w.vs_full_period.r - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need at least one window")]
    fn zero_windows_panics() {
        let _ = temporal_stability(medium(), Scale::National, 0);
    }

    #[test]
    fn waiting_times_are_stationary_across_halves() {
        // The generator has no drift; the two halves' gap distributions
        // must be statistically close (gaps within a half are shorter on
        // average than full-stream gaps, but identically so in both).
        let (ks, _p) = waiting_time_stationarity(medium()).unwrap();
        assert!(ks < 0.05, "ks = {ks}");
    }
}
