//! # tweetmob-core
//!
//! The paper's contribution: multi-scale population and mobility
//! estimation from geo-tagged tweet streams.
//!
//! The pipeline mirrors §III–IV of the paper exactly:
//!
//! 1. **Scales** ([`Scale`]): national (top-20 Australian cities, ε =
//!    50 km), state (top-20 NSW cities, ε = 25 km), metropolitan (top-20
//!    Sydney suburbs, ε = 2 km; 0.5 km sensitivity variant).
//! 2. **Population estimation** ([`Experiment::population_correlation`]):
//!    count unique Twitter users within ε of each area centre, rescale by
//!    `C = Σ census / Σ twitter`, and correlate with census populations
//!    (Fig. 3; paper reports pooled r = 0.816, p = 2.06e-15).
//! 3. **Mobility extraction** ([`Experiment::mobility`]): count pairs of
//!    consecutive tweets by the same user that appear first in a source
//!    area and then in a destination area (§IV), assemble an OD matrix,
//!    then fit and score Gravity 4-param, Gravity 2-param and Radiation
//!    (Fig. 4, Table II).
//!
//! ## Example
//!
//! ```
//! use tweetmob_core::{Experiment, Scale};
//! use tweetmob_synth::{GeneratorConfig, TweetGenerator};
//!
//! let ds = TweetGenerator::new(GeneratorConfig::small()).generate();
//! let exp = Experiment::new(&ds);
//! let pop = exp.population_correlation(Scale::National).unwrap();
//! assert_eq!(pop.areas.len(), 20);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` guards are deliberate: they also reject NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod ablation;
mod areaset;
mod displacement;
mod experiment;
mod odmatrix;
mod population;
mod temporal;
mod trips;

pub use ablation::{deterrence_ablation, DeterrenceAblation};
pub use areaset::{AreaSet, Scale};
pub use displacement::{
    displacement_profile, displacements_km, DisplacementProfile, DisplacementShares,
};
pub use experiment::{
    Experiment, ExperimentError, MobilityReport, PopulationSource, ScaleComparison,
};
pub use odmatrix::OdMatrix;
pub use population::{AreaPopulation, PooledPopulation, PopulationCorrelation};
pub use temporal::{
    temporal_stability, waiting_time_stationarity, TemporalStability, WindowResult,
};
pub use trips::{extract_trips, extract_trips_reference};

/// The shared deterministic worker pool every parallel stage runs on
/// (re-exported so pipeline callers can pin thread counts via
/// `tweetmob_core::par::with_threads` / `set_threads_override`).
pub use tweetmob_par as par;
