//! Origin–destination matrices of extracted trips.

use serde::Serialize;

/// A dense directed OD matrix over `n` areas.
///
/// The paper's mobility is directed ("first at the source area and then
/// the destination area"), so `T[i→j]` and `T[j→i]` are distinct cells.
/// Diagonal cells (same-area consecutive pairs) are not trips and are
/// rejected by [`OdMatrix::record`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct OdMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl OdMatrix {
    /// An all-zero `n × n` matrix.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Number of areas.
    #[inline]
    #[must_use]
    pub fn n_areas(&self) -> usize {
        self.n
    }

    /// Records one trip.
    ///
    /// # Panics
    ///
    /// If an index is out of range or `origin == dest` (a same-area pair
    /// is not a trip).
    #[inline]
    pub fn record(&mut self, origin: usize, dest: usize) {
        assert!(origin < self.n && dest < self.n, "area index out of range");
        assert_ne!(origin, dest, "diagonal entries are not trips");
        self.counts[origin * self.n + dest] += 1;
    }

    /// Trip count of a directed pair.
    ///
    /// # Panics
    ///
    /// If an index is out of range.
    #[inline]
    #[must_use]
    pub fn count(&self, origin: usize, dest: usize) -> u64 {
        assert!(origin < self.n && dest < self.n, "area index out of range");
        self.counts[origin * self.n + dest]
    }

    /// Total trips recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of directed pairs with at least one trip.
    #[must_use]
    pub fn nonzero_pairs(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Iterates over every ordered off-diagonal pair `(origin, dest,
    /// count)`, including zero-count pairs (fitting wants to know which
    /// pairs were never observed).
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n)
                .filter(move |&j| j != i)
                .map(move |j| (i, j, self.counts[i * self.n + j]))
        })
    }

    /// Total outflow of an area (row sum).
    ///
    /// # Panics
    ///
    /// If the index is out of range.
    #[must_use]
    pub fn outflow(&self, origin: usize) -> u64 {
        assert!(origin < self.n, "area index out of range");
        self.counts[origin * self.n..(origin + 1) * self.n]
            .iter()
            .sum()
    }

    /// Total inflow of an area (column sum).
    ///
    /// # Panics
    ///
    /// If the index is out of range.
    #[must_use]
    pub fn inflow(&self, dest: usize) -> u64 {
        assert!(dest < self.n, "area index out of range");
        (0..self.n).map(|i| self.counts[i * self.n + dest]).sum()
    }

    /// Merges another matrix of the same dimension into this one.
    ///
    /// # Panics
    ///
    /// If dimensions differ.
    pub fn merge(&mut self, other: &OdMatrix) {
        assert_eq!(self.n, other.n, "OD matrix dimensions differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut m = OdMatrix::new(3);
        m.record(0, 1);
        m.record(0, 1);
        m.record(2, 0);
        assert_eq!(m.count(0, 1), 2);
        assert_eq!(m.count(1, 0), 0);
        assert_eq!(m.count(2, 0), 1);
        assert_eq!(m.total(), 3);
        assert_eq!(m.nonzero_pairs(), 2);
    }

    #[test]
    #[should_panic(expected = "diagonal entries are not trips")]
    fn diagonal_rejected() {
        OdMatrix::new(3).record(1, 1);
    }

    #[test]
    #[should_panic(expected = "area index out of range")]
    fn out_of_range_rejected() {
        OdMatrix::new(3).record(0, 3);
    }

    #[test]
    fn iter_pairs_covers_off_diagonal_exactly() {
        let mut m = OdMatrix::new(4);
        m.record(1, 2);
        let pairs: Vec<(usize, usize, u64)> = m.iter_pairs().collect();
        assert_eq!(pairs.len(), 12); // 4·3 ordered pairs
        assert!(pairs.iter().all(|&(i, j, _)| i != j));
        assert_eq!(
            pairs.iter().find(|&&(i, j, _)| i == 1 && j == 2).unwrap().2,
            1
        );
        let zeros = pairs.iter().filter(|&&(_, _, c)| c == 0).count();
        assert_eq!(zeros, 11);
    }

    #[test]
    fn flows_are_directed() {
        let mut m = OdMatrix::new(2);
        m.record(0, 1);
        m.record(0, 1);
        m.record(1, 0);
        assert_eq!(m.count(0, 1), 2);
        assert_eq!(m.count(1, 0), 1);
        assert_eq!(m.outflow(0), 2);
        assert_eq!(m.inflow(0), 1);
        assert_eq!(m.outflow(1), 1);
        assert_eq!(m.inflow(1), 2);
    }

    #[test]
    fn merge_adds_cellwise() {
        let mut a = OdMatrix::new(2);
        a.record(0, 1);
        let mut b = OdMatrix::new(2);
        b.record(0, 1);
        b.record(1, 0);
        a.merge(&b);
        assert_eq!(a.count(0, 1), 2);
        assert_eq!(a.count(1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "OD matrix dimensions differ")]
    fn merge_dimension_mismatch_panics() {
        OdMatrix::new(2).merge(&OdMatrix::new(3));
    }

    #[test]
    fn empty_matrix_queries() {
        let m = OdMatrix::new(5);
        assert_eq!(m.total(), 0);
        assert_eq!(m.nonzero_pairs(), 0);
        assert_eq!(m.outflow(4), 0);
        assert_eq!(m.inflow(0), 0);
    }
}
