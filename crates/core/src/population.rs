//! Population estimation from unique Twitter users (paper §III, Fig. 3).

use crate::areaset::AreaSet;
use serde::Serialize;
use std::fmt;
use tweetmob_data::TweetDataset;
use tweetmob_geo::GridIndex;
use tweetmob_stats::correlation::{log_pearson, pearson, Correlation};
use tweetmob_stats::StatsError;

/// One area's population estimate.
#[derive(Debug, Clone, Serialize)]
pub struct AreaPopulation {
    /// Area name.
    pub name: &'static str,
    /// Census population.
    pub census: f64,
    /// Unique Twitter users with at least one tweet within ε of the
    /// centre.
    pub twitter_users: u64,
    /// `C · twitter_users` where `C = Σ census / Σ twitter` over the
    /// scale (the paper's rescaling `C·p_Twitter ≈ p_Census`).
    pub rescaled: f64,
}

/// Population-estimation result for one area set.
#[derive(Debug, Clone, Serialize)]
pub struct PopulationCorrelation {
    /// Per-area estimates, in area-set order.
    pub areas: Vec<AreaPopulation>,
    /// The rescaling factor `C`.
    pub rescale_factor: f64,
    /// Pearson correlation of log10(rescaled) vs log10(census) — the
    /// paper's log-log Fig. 3 reading.
    pub correlation: Correlation,
    /// Pearson correlation on raw (linear) values, for reference.
    pub correlation_raw: Correlation,
    /// Median unique-user count across the areas (paper §III quotes
    /// 4166 / 743 / 3988 for its scales).
    pub median_users: f64,
}

impl fmt::Display for PopulationCorrelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>12} {:>14} {:>14}",
            "area", "census", "twitter users", "rescaled"
        )?;
        for a in &self.areas {
            writeln!(
                f,
                "{:<18} {:>12.0} {:>14} {:>14.0}",
                a.name, a.census, a.twitter_users, a.rescaled
            )?;
        }
        write!(
            f,
            "r(log) = {:.3} (p = {:.2e}), r(raw) = {:.3}, C = {:.1}",
            self.correlation.r,
            self.correlation.p_two_tailed,
            self.correlation_raw.r,
            self.rescale_factor
        )
    }
}

/// Pooled population correlation over several scales — the paper's
/// headline "60 samples … Pearson correlation coefficient of 0.816 …
/// two-tailed p-value of 2.06×10⁻¹⁵".
#[derive(Debug, Clone, Serialize)]
pub struct PooledPopulation {
    /// Per-scale results, in input order.
    pub per_scale: Vec<PopulationCorrelation>,
    /// Pooled log-space correlation across all areas of all scales
    /// (each scale rescaled by its own `C` first, as in Fig. 3).
    pub pooled: Correlation,
    /// Pooled raw-value correlation.
    pub pooled_raw: Correlation,
}

/// Estimates populations for one area set.
///
/// `index` must be a [`GridIndex`] over the dataset's coordinate
/// columns in row order (e.g. [`GridIndex::from_columns`]),
/// so hit indices map straight to the dataset's parallel user column.
/// The per-area radius queries are independent reads of a shared
/// [`GridIndex`], so they are dispatched over the [`tweetmob_par`] pool
/// (`par/population/*` gauges); each area's unique-user count is
/// computed entirely inside its own map call, so the concatenated
/// counts are identical at every thread count.
///
/// # Errors
///
/// [`StatsError::EmptySample`] when no tweet falls within any study
/// area — the rescaling factor `Σcensus / Σtwitter` is undefined (it
/// used to silently come out NaN and poison every downstream metric).
/// Otherwise propagates correlation failures (e.g. every area had the
/// same user count → zero variance).
pub fn estimate_population(
    dataset: &TweetDataset,
    index: &GridIndex,
    areas: &AreaSet,
) -> Result<PopulationCorrelation, StatsError> {
    let _span = tweetmob_obs::span!("population");
    let users = dataset.users();
    // Areas are few (≈20) but each query scans a 50 km circle over
    // potentially millions of points, so even 4 areas are worth
    // fanning out.
    let area_list = areas.areas();
    let twitter: Vec<u64> = tweetmob_par::par_map_reduce(
        "population",
        area_list.len(),
        4,
        |range| {
            let mut counts = Vec::with_capacity(range.len());
            for a in &area_list[range] {
                let mut hits: Vec<u32> = Vec::new();
                index.for_each_within_radius(a.center, areas.radius_km(), |i, _| {
                    hits.push(users[i as usize].0);
                });
                hits.sort_unstable();
                hits.dedup();
                counts.push(hits.len() as u64);
            }
            counts
        },
        |mut acc, chunk| {
            acc.extend(chunk);
            acc
        },
    );
    let census = areas.census_populations();
    let census_total: f64 = census.iter().sum();
    let twitter_total: f64 = twitter.iter().map(|&u| u as f64).sum();
    if twitter_total <= 0.0 {
        return Err(StatsError::EmptySample(
            "no tweets within any study area; rescaling factor undefined",
        ));
    }
    let rescale_factor = census_total / twitter_total;
    let rescaled: Vec<f64> = twitter.iter().map(|&u| u as f64 * rescale_factor).collect();
    let correlation = log_pearson(&rescaled, &census)?;
    let correlation_raw = pearson(&rescaled, &census)?;
    let user_counts: Vec<f64> = twitter.iter().map(|&u| u as f64).collect();
    let median_users = tweetmob_stats::descriptive::median(&user_counts)?;

    let areas_out = areas
        .areas()
        .iter()
        .zip(twitter.iter().zip(&rescaled))
        .map(|(a, (&tw, &rs))| AreaPopulation {
            name: a.name,
            census: a.population as f64,
            twitter_users: tw,
            rescaled: rs,
        })
        .collect();
    Ok(PopulationCorrelation {
        areas: areas_out,
        rescale_factor,
        correlation,
        correlation_raw,
        median_users,
    })
}

/// Pools several per-scale results into the paper's 60-sample
/// correlation.
///
/// # Errors
///
/// Correlation failures on the pooled samples.
pub fn pool_population(
    per_scale: Vec<PopulationCorrelation>,
) -> Result<PooledPopulation, StatsError> {
    let mut est = Vec::new();
    let mut census = Vec::new();
    for scale in &per_scale {
        for a in &scale.areas {
            est.push(a.rescaled);
            census.push(a.census);
        }
    }
    let pooled = log_pearson(&est, &census)?;
    let pooled_raw = pearson(&est, &census)?;
    Ok(PooledPopulation {
        per_scale,
        pooled,
        pooled_raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areaset::Scale;
    use tweetmob_data::{Timestamp, Tweet, UserId};

    /// Builds a dataset with `users_per_area[i]` distinct users tweeting
    /// at national area `i`'s centre.
    fn dataset_with_users(users_per_area: &[u64]) -> TweetDataset {
        let areas = Scale::National.areas();
        let mut tweets = Vec::new();
        let mut uid = 0u32;
        for (i, &n) in users_per_area.iter().enumerate() {
            for _ in 0..n {
                // Two tweets per user, both at the same centre: unique
                // user counting must not double-count.
                tweets.push(Tweet::new(
                    UserId(uid),
                    Timestamp::from_secs(100),
                    areas[i].center,
                ));
                tweets.push(Tweet::new(
                    UserId(uid),
                    Timestamp::from_secs(200),
                    areas[i].center,
                ));
                uid += 1;
            }
        }
        TweetDataset::from_tweets(tweets)
    }

    fn index_of(ds: &TweetDataset) -> GridIndex {
        GridIndex::from_columns(ds.lats(), ds.lons(), 0.2)
    }

    #[test]
    fn unique_users_counted_once() {
        // Users proportional to census → perfect correlation, C exact.
        let areas = AreaSet::of_scale(Scale::National);
        let users: Vec<u64> = areas
            .areas()
            .iter()
            .map(|a| (a.population / 10_000).max(1))
            .collect();
        let ds = dataset_with_users(&users);
        let pop = estimate_population(&ds, &index_of(&ds), &areas).unwrap();
        for (a, &want) in pop.areas.iter().zip(&users) {
            assert_eq!(a.twitter_users, want, "{}", a.name);
        }
        assert!(pop.correlation.r > 0.999, "r = {}", pop.correlation.r);
        // C should be close to 10,000 (the construction ratio).
        assert!(
            (pop.rescale_factor - 10_000.0).abs() / 10_000.0 < 0.05,
            "C = {}",
            pop.rescale_factor
        );
    }

    #[test]
    fn rescaled_totals_match_census_total() {
        let areas = AreaSet::of_scale(Scale::National);
        let users: Vec<u64> = (1..=20).map(|i| i * 7).collect();
        let ds = dataset_with_users(&users);
        let pop = estimate_population(&ds, &index_of(&ds), &areas).unwrap();
        let rescaled_total: f64 = pop.areas.iter().map(|a| a.rescaled).sum();
        let census_total: f64 = pop.areas.iter().map(|a| a.census).sum();
        assert!((rescaled_total - census_total).abs() / census_total < 1e-9);
    }

    #[test]
    fn scrambled_users_give_weak_correlation() {
        // Assign user counts inversely to population rank (the census
        // list is descending, so ascending counts anti-align) → negative
        // or weak correlation.
        let users: Vec<u64> = (1..=20).map(|i| i * 50).collect();
        let areas = AreaSet::of_scale(Scale::National);
        let ds = dataset_with_users(&users);
        let pop = estimate_population(&ds, &index_of(&ds), &areas).unwrap();
        assert!(pop.correlation.r < 0.3, "r = {}", pop.correlation.r);
    }

    #[test]
    fn users_outside_radius_not_counted() {
        // One user 60 km from Sydney: outside the 50 km national radius.
        let sydney = Scale::National.areas()[0].center;
        let far = tweetmob_geo::destination(sydney, 90.0, 60.0);
        let mut tweets = vec![Tweet::new(UserId(0), Timestamp::from_secs(1), far)];
        // Give every other area one user so correlation is defined.
        for (i, a) in Scale::National.areas().iter().enumerate().skip(1) {
            tweets.push(Tweet::new(
                UserId(i as u32 + 1),
                Timestamp::from_secs(1),
                a.center,
            ));
        }
        let ds = TweetDataset::from_tweets(tweets);
        let areas = AreaSet::of_scale(Scale::National);
        let pop = estimate_population(&ds, &index_of(&ds), &areas).unwrap();
        assert_eq!(pop.areas[0].twitter_users, 0, "Sydney should see nobody");
    }

    #[test]
    fn no_hits_is_an_error_not_nan() {
        // Every tweet is in the outback, outside all national areas.
        // Regression: the rescale factor used to come out NaN and poison
        // every downstream metric silently.
        let tweets: Vec<Tweet> = (0..10)
            .map(|u| {
                Tweet::new(
                    UserId(u),
                    Timestamp::from_secs(i64::from(u)),
                    tweetmob_geo::Point::new_unchecked(-25.0, 135.0),
                )
            })
            .collect();
        let ds = TweetDataset::from_tweets(tweets);
        let areas = AreaSet::of_scale(Scale::National);
        let err = estimate_population(&ds, &index_of(&ds), &areas).unwrap_err();
        assert!(matches!(err, StatsError::EmptySample(_)), "got {err:?}");
    }

    #[test]
    fn pooling_concatenates_scales() {
        let areas = AreaSet::of_scale(Scale::National);
        let users: Vec<u64> = areas
            .areas()
            .iter()
            .map(|a| (a.population / 10_000).max(1))
            .collect();
        let ds = dataset_with_users(&users);
        let idx = index_of(&ds);
        let a = estimate_population(&ds, &idx, &areas).unwrap();
        let b = estimate_population(&ds, &idx, &areas).unwrap();
        let pooled = pool_population(vec![a, b]).unwrap();
        assert_eq!(pooled.per_scale.len(), 2);
        assert_eq!(pooled.pooled.n, 40);
        assert!(pooled.pooled.r > 0.999);
    }

    #[test]
    fn display_shows_table() {
        let areas = AreaSet::of_scale(Scale::National);
        let users: Vec<u64> = (1..=20).collect();
        let ds = dataset_with_users(&users);
        let text = estimate_population(&ds, &index_of(&ds), &areas)
            .unwrap()
            .to_string();
        assert!(text.contains("Sydney"));
        assert!(text.contains("r(log)"));
    }
}
