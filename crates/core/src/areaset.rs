//! Study scales and area sets with point-to-area assignment.

use std::sync::Arc;
use tweetmob_geo::{
    equirectangular_km, haversine_km, PairGeometry, Point, TrigPoint, EARTH_RADIUS_KM,
};
use tweetmob_synth::{Area, NATIONAL_TOP20, NSW_TOP20, SYDNEY_SUBURBS_TOP20};

/// The paper's three geographic scales (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// 20 most populated Australian cities; ε = 50 km.
    National,
    /// 20 most populated NSW cities; ε = 25 km.
    State,
    /// 20 most populated Sydney suburbs; ε = 2 km.
    Metropolitan,
}

impl Scale {
    /// All three scales, in paper order.
    pub const ALL: [Scale; 3] = [Scale::National, Scale::State, Scale::Metropolitan];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Scale::National => "National",
            Scale::State => "State",
            Scale::Metropolitan => "Metropolitan",
        }
    }

    /// The paper's search radius ε for this scale, km.
    pub fn search_radius_km(self) -> f64 {
        match self {
            Scale::National => 50.0,
            Scale::State => 25.0,
            Scale::Metropolitan => 2.0,
        }
    }

    /// The 20 areas studied at this scale.
    pub fn areas(self) -> &'static [Area] {
        match self {
            Scale::National => &NATIONAL_TOP20,
            Scale::State => &NSW_TOP20,
            Scale::Metropolitan => &SYDNEY_SUBURBS_TOP20,
        }
    }
}

/// A set of areas with a search radius: the unit every experiment
/// operates on.
#[derive(Debug, Clone)]
pub struct AreaSet {
    areas: Vec<Area>,
    radius_km: f64,
    /// Build-once pairwise centre geometry, shared with every model
    /// consumer (observations, intervening population, epidemic network).
    geometry: Arc<PairGeometry>,
    /// Per-area precomputed assignment filters for the batch path.
    filters: Vec<AreaFilter>,
}

/// Per-area state precomputed once for [`AreaSet::assign_batch`]: a
/// conservative degree-space bounding window plus the centre's hoisted
/// trigonometry.
///
/// The window is derived *from* the equirectangular pre-filter, never
/// replacing it: `equirectangular_km ≥ R·|Δlat_rad|` always, and (once
/// the latitude window has passed) `≥ R·|Δlon_rad|·cos_min` with
/// `cos_min` the cosine lower bound over the admissible latitude band —
/// so a point outside the window is guaranteed to be outside the
/// equirectangular gate too (the 0.1 % inflation absorbs rounding).
/// Survivors still run the exact equirectangular gate and the exact
/// haversine (via [`TrigPoint`], bit-identical by its contract), which
/// makes batch assignments decision-identical to [`AreaSet::assign`].
#[derive(Debug, Clone)]
struct AreaFilter {
    lat: f64,
    lon: f64,
    /// Latitude half-window, degrees: beyond it the equirectangular
    /// pre-filter necessarily rejects.
    dlat_max: f64,
    /// Longitude half-window, degrees, valid only after the latitude
    /// window passed; `INFINITY` when the latitude band nears a pole.
    dlon_max: f64,
    trig: TrigPoint,
}

impl AreaFilter {
    fn new(center: Point, prefilter_km: f64) -> Self {
        // Kilometres per degree of latitude: R·π/180.
        let km_per_deg = EARTH_RADIUS_KM.to_radians();
        let dlat_max = prefilter_km / km_per_deg * 1.001;
        let lo = (center.lat - dlat_max).clamp(-90.0, 90.0);
        let hi = (center.lat + dlat_max).clamp(-90.0, 90.0);
        // cos is unimodal on [-90°, 90°], so its minimum over the band is
        // at an endpoint. The equirectangular mean latitude of any point
        // inside the latitude window stays inside [lo, hi].
        let cos_min = lo.to_radians().cos().min(hi.to_radians().cos());
        let dlon_max = if cos_min > 1e-6 {
            prefilter_km / (km_per_deg * cos_min) * 1.001
        } else {
            f64::INFINITY
        };
        Self {
            lat: center.lat,
            lon: center.lon,
            dlat_max,
            dlon_max,
            trig: TrigPoint::new(center),
        }
    }
}

impl AreaSet {
    /// Builds the canonical area set of a scale.
    pub fn of_scale(scale: Scale) -> Self {
        Self::new(scale.areas().to_vec(), scale.search_radius_km())
    }

    /// Builds the area set of a scale with a custom search radius (the
    /// paper's Fig. 3(b) uses the metropolitan areas with ε = 0.5 km).
    pub fn of_scale_with_radius(scale: Scale, radius_km: f64) -> Self {
        Self::new(scale.areas().to_vec(), radius_km)
    }

    /// Builds a custom area set.
    ///
    /// # Panics
    ///
    /// If `areas` is empty or `radius_km` is not positive.
    pub fn new(areas: Vec<Area>, radius_km: f64) -> Self {
        assert!(!areas.is_empty(), "area set cannot be empty");
        assert!(radius_km > 0.0, "search radius must be positive");
        let centers: Vec<Point> = areas.iter().map(|a| a.center).collect();
        let geometry = PairGeometry::shared(&centers);
        let prefilter = radius_km * 1.05 + 1.0;
        let filters = centers
            .iter()
            .map(|&c| AreaFilter::new(c, prefilter))
            .collect();
        Self {
            areas,
            radius_km,
            geometry,
            filters,
        }
    }

    /// The areas, in construction order.
    #[inline]
    pub fn areas(&self) -> &[Area] {
        &self.areas
    }

    /// Number of areas.
    #[inline]
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// The search radius ε, km.
    #[inline]
    pub fn radius_km(&self) -> f64 {
        self.radius_km
    }

    /// Centre-to-centre distance between areas `i` and `j`, km.
    ///
    /// # Panics
    ///
    /// If an index is out of range.
    #[inline]
    pub fn distance_km(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.len() && j < self.len(), "area index out of range");
        self.geometry.distance(i, j)
    }

    /// The shared pairwise geometry cache over the area centres.
    #[inline]
    pub fn geometry(&self) -> &Arc<PairGeometry> {
        &self.geometry
    }

    /// Mean pairwise centre distance (the paper quotes 1422 / 341 /
    /// 7.5 km for its three scales).
    pub fn mean_pairwise_distance_km(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        // The cached upper triangle is stored in the same row-major
        // i < j order the pre-cache loop summed in, so this stays
        // bit-identical to the old implementation.
        self.geometry.total_distance_km() / (n * (n - 1) / 2) as f64
    }

    /// Assigns a point to the nearest area whose centre is within ε, or
    /// `None` when no area covers it.
    ///
    /// A cheap equirectangular pre-filter at 1.05× the radius rejects
    /// far-away areas before the exact haversine test (the extraction
    /// loop runs this for every tweet).
    pub fn assign(&self, p: Point) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        let prefilter = self.radius_km * 1.05 + 1.0;
        for (i, a) in self.areas.iter().enumerate() {
            if equirectangular_km(a.center, p) > prefilter {
                continue;
            }
            // lint: allow(raw-haversine) — single-point query path; the column shape is assign_batch
            let d = haversine_km(a.center, p);
            if d <= self.radius_km && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Assigns a whole coordinate-column slice at once, appending one
    /// code per point to `out`: the assigned area index, or `-1` when no
    /// area covers the point.
    ///
    /// Decision-identical to calling [`AreaSet::assign`] per point — the
    /// equirectangular gate and the haversine comparison are the exact
    /// same float expressions — but structured for columnar callers:
    /// the per-area trigonometry is hoisted into build-once
    /// [`AreaFilter`]s, and most `(point, area)` combinations die in a
    /// two-compare degree-space window before any trigonometry runs.
    ///
    /// # Panics
    ///
    /// If the columns have different lengths.
    pub fn assign_batch(&self, lats: &[f64], lons: &[f64], out: &mut Vec<i32>) {
        assert_eq!(lats.len(), lons.len(), "coordinate columns must be parallel");
        let prefilter = self.radius_km * 1.05 + 1.0;
        out.reserve(lats.len());
        for (&lat, &lon) in lats.iter().zip(lons.iter()) {
            let mut best: Option<(usize, f64)> = None;
            let mut point_trig: Option<TrigPoint> = None;
            let p = Point::new_unchecked(lat, lon);
            for (i, f) in self.filters.iter().enumerate() {
                // Conservative window: can only skip what the
                // equirectangular gate below would skip anyway.
                if (lat - f.lat).abs() > f.dlat_max || (lon - f.lon).abs() > f.dlon_max {
                    continue;
                }
                if equirectangular_km(Point::new_unchecked(f.lat, f.lon), p) > prefilter {
                    continue;
                }
                // The point's trigonometry is hoisted lazily: points that
                // survive no window (the overwhelming majority at paper
                // scale) never pay for it.
                let pt = *point_trig.get_or_insert_with(|| TrigPoint::new(p));
                let d = f.trig.distance_km(&pt);
                if d <= self.radius_km && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
            out.push(best.map_or(-1, |(i, _)| i as i32));
        }
    }

    /// Census populations as `f64`, aligned with [`AreaSet::areas`].
    pub fn census_populations(&self) -> Vec<f64> {
        self.areas.iter().map(|a| a.population as f64).collect()
    }

    /// Area centres, aligned with [`AreaSet::areas`].
    pub fn centers(&self) -> Vec<Point> {
        self.areas.iter().map(|a| a.center).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_constants_match_paper() {
        assert_eq!(Scale::National.search_radius_km(), 50.0);
        assert_eq!(Scale::State.search_radius_km(), 25.0);
        assert_eq!(Scale::Metropolitan.search_radius_km(), 2.0);
        for s in Scale::ALL {
            assert_eq!(s.areas().len(), 20);
        }
        assert_eq!(Scale::National.name(), "National");
    }

    #[test]
    fn mean_pairwise_distances_ordered_like_paper() {
        let nat = AreaSet::of_scale(Scale::National).mean_pairwise_distance_km();
        let sta = AreaSet::of_scale(Scale::State).mean_pairwise_distance_km();
        let met = AreaSet::of_scale(Scale::Metropolitan).mean_pairwise_distance_km();
        assert!(nat > 900.0 && nat < 2_000.0, "national {nat}");
        assert!(sta > 200.0 && sta < 500.0, "state {sta}");
        assert!(met > 4.0 && met < 25.0, "metro {met}");
    }

    #[test]
    fn assign_inside_radius() {
        let set = AreaSet::of_scale(Scale::National);
        // Exact Sydney centre.
        let sydney = set.areas()[0].center;
        assert_eq!(set.assign(sydney), Some(0));
        // Parramatta (~20 km west of Sydney CBD) still inside 50 km.
        let parramatta = Point::new_unchecked(-33.8150, 151.0010);
        assert_eq!(set.assign(parramatta), Some(0));
    }

    #[test]
    fn assign_outside_any_radius_is_none() {
        let set = AreaSet::of_scale(Scale::Metropolitan);
        // Alice Springs is nowhere near any Sydney suburb.
        let alice = Point::new_unchecked(-23.6980, 133.8807);
        assert_eq!(set.assign(alice), None);
        // 5 km from the nearest suburb centre at ε = 2 km is also out.
        let offshore = Point::new_unchecked(-33.8688, 151.40);
        assert_eq!(set.assign(offshore), None);
    }

    #[test]
    fn assign_prefers_nearest_when_radii_overlap() {
        // Newcastle and Sydney are ~117 km apart; with ε = 100 km a point
        // 30 km from Newcastle and ~90 km from Sydney must pick Newcastle.
        let set = AreaSet::new(
            vec![Scale::National.areas()[0], Scale::National.areas()[6]],
            100.0,
        );
        let near_newcastle = Point::new_unchecked(-33.15, 151.60);
        assert_eq!(set.assign(near_newcastle), Some(1));
    }

    #[test]
    fn smaller_radius_rejects_more() {
        let wide = AreaSet::of_scale_with_radius(Scale::Metropolitan, 2.0);
        let narrow = AreaSet::of_scale_with_radius(Scale::Metropolitan, 0.5);
        // 1 km from the Bondi centre: inside 2 km, outside 0.5 km.
        let near_bondi = Point::new_unchecked(-33.8915, 151.2875);
        assert_eq!(wide.assign(near_bondi), Some(19));
        assert_eq!(narrow.assign(near_bondi), None);
    }

    #[test]
    fn distances_symmetric_and_consistent() {
        let set = AreaSet::of_scale(Scale::National);
        let d_sm = set.distance_km(0, 1); // Sydney–Melbourne
        assert!((d_sm - 713.0).abs() < 15.0, "Sydney-Melbourne {d_sm}");
        for i in 0..set.len() {
            assert_eq!(set.distance_km(i, i), 0.0);
            for j in 0..set.len() {
                assert_eq!(set.distance_km(i, j), set.distance_km(j, i));
            }
        }
    }

    #[test]
    fn geometry_cache_matches_distance_accessor() {
        let set = AreaSet::of_scale(Scale::State);
        let geo = set.geometry();
        assert_eq!(geo.len(), set.len());
        for i in 0..set.len() {
            for j in 0..set.len() {
                assert_eq!(
                    set.distance_km(i, j).to_bits(),
                    geo.distance(i, j).to_bits()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "area set cannot be empty")]
    fn empty_area_set_panics() {
        AreaSet::new(Vec::new(), 10.0);
    }

    #[test]
    #[should_panic(expected = "search radius must be positive")]
    fn zero_radius_panics() {
        AreaSet::new(Scale::National.areas().to_vec(), 0.0);
    }

    #[test]
    fn batch_assign_matches_scalar_everywhere() {
        // A coarse sweep over the whole continent at every scale: the
        // batch path must make the identical decision for every point,
        // including boundary points far outside any window.
        for scale in Scale::ALL {
            let set = AreaSet::of_scale(scale);
            let mut lats = Vec::new();
            let mut lons = Vec::new();
            let mut lat = -45.0;
            while lat < -10.0 {
                let mut lon = 112.0;
                while lon < 155.0 {
                    lats.push(lat);
                    lons.push(lon);
                    lon += 0.7;
                }
                lat += 0.7;
            }
            // And the exact centres plus near-radius offsets.
            for a in set.areas() {
                for off in [0.0, 0.01, 0.3, 0.5] {
                    lats.push(a.center.lat + off);
                    lons.push(a.center.lon - off);
                }
            }
            let mut codes = Vec::new();
            set.assign_batch(&lats, &lons, &mut codes);
            assert_eq!(codes.len(), lats.len());
            for k in 0..lats.len() {
                let p = Point::new_unchecked(lats[k], lons[k]);
                let scalar = set.assign(p).map_or(-1, |i| i as i32);
                assert_eq!(codes[k], scalar, "{scale:?} point {p:?}");
            }
        }
    }

    #[test]
    fn batch_assign_appends_without_clearing() {
        let set = AreaSet::of_scale(Scale::National);
        let mut codes = vec![7];
        set.assign_batch(&[-33.8688], &[151.2093], &mut codes);
        assert_eq!(codes, vec![7, 0]);
    }

    mod batch_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn batch_assign_matches_scalar_on_random_points(
                coords in prop::collection::vec((-55.0..-8.0f64, 110.0..160.0f64), 0..80),
            ) {
                let set = AreaSet::of_scale(Scale::State);
                let lats: Vec<f64> = coords.iter().map(|c| c.0).collect();
                let lons: Vec<f64> = coords.iter().map(|c| c.1).collect();
                let mut codes = Vec::new();
                set.assign_batch(&lats, &lons, &mut codes);
                for k in 0..lats.len() {
                    let scalar = set
                        .assign(Point::new_unchecked(lats[k], lons[k]))
                        .map_or(-1, |i| i as i32);
                    prop_assert_eq!(codes[k], scalar);
                }
            }
        }
    }

    #[test]
    fn census_and_centers_align() {
        let set = AreaSet::of_scale(Scale::State);
        assert_eq!(set.census_populations().len(), 20);
        assert_eq!(set.centers().len(), 20);
        assert_eq!(set.census_populations()[0], 4_757_000.0); // Sydney
    }
}
