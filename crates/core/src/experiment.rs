//! The end-to-end experiment runner.

use crate::areaset::{AreaSet, Scale};
use crate::odmatrix::OdMatrix;
use crate::population::{
    estimate_population, pool_population, PooledPopulation, PopulationCorrelation,
};
use crate::trips::extract_trips;
use serde::Serialize;
use std::fmt;
use std::sync::Arc;
use tweetmob_data::{BundleArea, BundleMeta, ModelBundle, TweetDataset};
use tweetmob_geo::{GridIndex, PairGeometry};
use tweetmob_models::{
    evaluate, FittedModelSet, FlowObservation, Gravity2Fit, Gravity4Fit, InterveningPopulation,
    ModelError, ModelEvaluation, OpportunitiesFit, RadiationFit,
};
use tweetmob_stats::StatsError;

/// Which population vector feeds the mobility models' `m`, `n`, `s`.
///
/// The paper fits against Twitter-derived populations and proposes the
/// census swap as future work ("by replacing m and n with the population
/// from census, it is feasible to estimate the real-world mobility");
/// both paths are first-class here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulationSource {
    /// Unique Twitter users within ε of each centre (the paper's fits).
    Twitter,
    /// Gazetteer census populations (the paper's future-work proposal).
    Census,
}

impl PopulationSource {
    /// Stable lowercase key, as recorded in artifact bundles and
    /// accepted by the CLI (`"twitter"` / `"census"`).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            PopulationSource::Twitter => "twitter",
            PopulationSource::Census => "census",
        }
    }

    /// Parses the stable key back (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("twitter") {
            Some(PopulationSource::Twitter)
        } else if s.eq_ignore_ascii_case("census") {
            Some(PopulationSource::Census)
        } else {
            None
        }
    }
}

/// Everything the mobility experiment produces for one area set: the
/// extracted observations, the four fitted models, and their scores.
#[derive(Debug, Clone, Serialize)]
pub struct MobilityReport {
    /// Scale or area-set label.
    pub label: String,
    /// One observation per ordered area pair (zero-flow pairs included —
    /// fitting and evaluation skip them internally).
    pub observations: Vec<FlowObservation>,
    /// Total trips extracted.
    pub od_total: u64,
    /// Ordered pairs with at least one trip.
    pub nonzero_pairs: usize,
    /// Fitted 4-parameter gravity model (Eq. 1).
    pub gravity4: Gravity4Fit,
    /// Fitted 2-parameter gravity model (Eq. 2).
    pub gravity2: Gravity2Fit,
    /// Fitted radiation model (Eq. 3).
    pub radiation: RadiationFit,
    /// Fitted intervening-opportunities model (extension).
    pub opportunities: OpportunitiesFit,
    /// Scores, in the order gravity4, gravity2, radiation, opportunities
    /// (the first three are the paper's Table II row).
    pub evaluations: Vec<ModelEvaluation>,
}

impl MobilityReport {
    /// The evaluation of a model by display name, if present.
    pub fn evaluation(&self, name: &str) -> Option<&ModelEvaluation> {
        self.evaluations.iter().find(|e| e.model == name)
    }
}

impl fmt::Display for MobilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} trips over {} nonzero pairs",
            self.label, self.od_total, self.nonzero_pairs
        )?;
        writeln!(
            f,
            "  Gravity 4Param: C={:.3e} α={:.2} β={:.2} γ={:.2} (R²={:.3})",
            self.gravity4.c,
            self.gravity4.alpha,
            self.gravity4.beta,
            self.gravity4.gamma,
            self.gravity4.log_r_squared
        )?;
        writeln!(
            f,
            "  Gravity 2Param: C={:.3e} γ={:.2} (R²={:.3})",
            self.gravity2.c, self.gravity2.gamma, self.gravity2.log_r_squared
        )?;
        writeln!(f, "  Radiation:      C={:.3e}", self.radiation.c)?;
        for e in &self.evaluations {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

/// One row of the paper's Table II: a scale with its three model scores.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleComparison {
    /// Scale name.
    pub scale: &'static str,
    /// The full mobility report for the scale.
    pub report: MobilityReport,
}

/// Errors from the experiment runner.
#[derive(Debug)]
pub enum ExperimentError {
    /// A statistics routine failed (degenerate population data, …).
    Stats(StatsError),
    /// A model fit failed (too few trips at this scale, …).
    Model(ModelError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Stats(e) => write!(f, "statistics failure: {e}"),
            ExperimentError::Model(e) => write!(f, "model failure: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<StatsError> for ExperimentError {
    fn from(e: StatsError) -> Self {
        ExperimentError::Stats(e)
    }
}

impl From<ModelError> for ExperimentError {
    fn from(e: ModelError) -> Self {
        ExperimentError::Model(e)
    }
}

/// The experiment runner: borrows a dataset, builds the shared spatial
/// index once, and exposes each of the paper's analyses as a method.
pub struct Experiment<'a> {
    dataset: &'a TweetDataset,
    index: GridIndex,
    geometry_cache: bool,
}

impl<'a> Experiment<'a> {
    /// Indexes the dataset (0.2° grid cells — a few km; good for every ε
    /// the paper uses).
    pub fn new(dataset: &'a TweetDataset) -> Self {
        let index = GridIndex::from_columns(dataset.lats(), dataset.lons(), 0.2);
        Self {
            dataset,
            index,
            geometry_cache: true,
        }
    }

    /// Toggles the shared pairwise-geometry cache (`--no-geometry-cache`
    /// escape hatch). When off, observations are assembled through the
    /// scalar per-pair distance path; results are bit-identical either
    /// way — the toggle exists for A/B benchmarking and as a fallback.
    pub fn set_geometry_cache(&mut self, enabled: bool) -> &mut Self {
        self.geometry_cache = enabled;
        self
    }

    /// Whether the pairwise-geometry cache is enabled (default: true).
    pub fn geometry_cache(&self) -> bool {
        self.geometry_cache
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &TweetDataset {
        self.dataset
    }

    /// Fig. 3: population correlation at one scale with its canonical ε.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Stats`] when the correlation is degenerate
    /// (e.g. no users found anywhere).
    pub fn population_correlation(
        &self,
        scale: Scale,
    ) -> Result<PopulationCorrelation, ExperimentError> {
        self.population_correlation_with_radius(scale, scale.search_radius_km())
    }

    /// Fig. 3(b) and the radius-sensitivity ablation: population
    /// correlation at a scale with a custom ε.
    ///
    /// # Errors
    ///
    /// As [`Experiment::population_correlation`].
    pub fn population_correlation_with_radius(
        &self,
        scale: Scale,
        radius_km: f64,
    ) -> Result<PopulationCorrelation, ExperimentError> {
        let areas = AreaSet::of_scale_with_radius(scale, radius_km);
        Ok(estimate_population(self.dataset, &self.index, &areas)?)
    }

    /// The paper's pooled 60-sample population correlation (Fig. 3(a)):
    /// all three scales at their canonical radii, rescaled per scale.
    ///
    /// # Errors
    ///
    /// As [`Experiment::population_correlation`].
    pub fn pooled_population(&self) -> Result<PooledPopulation, ExperimentError> {
        let per_scale = Scale::ALL
            .iter()
            .map(|&s| self.population_correlation(s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(pool_population(per_scale)?)
    }

    /// §IV: mobility extraction + model fitting at one scale, using
    /// Twitter-derived populations (the paper's configuration).
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Model`] when a model cannot be fitted (too few
    /// trips).
    pub fn mobility(&self, scale: Scale) -> Result<MobilityReport, ExperimentError> {
        self.mobility_with(
            &AreaSet::of_scale(scale),
            PopulationSource::Twitter,
            scale.name().to_string(),
        )
    }

    /// Mobility experiment over a custom area set and population source.
    ///
    /// Thin wrapper over [`Experiment::fit_with`] that discards the
    /// artifact bundle; results are identical.
    ///
    /// # Errors
    ///
    /// As [`Experiment::mobility`].
    pub fn mobility_with(
        &self,
        areas: &AreaSet,
        source: PopulationSource,
        label: String,
    ) -> Result<MobilityReport, ExperimentError> {
        self.fit_with(areas, source, label)
            .map(|(report, _)| report)
    }

    /// [`Experiment::fit_with`] at a paper scale with Twitter-derived
    /// populations — the fit side of the fit-once / predict-many split.
    ///
    /// # Errors
    ///
    /// As [`Experiment::mobility`].
    pub fn fit(&self, scale: Scale) -> Result<(MobilityReport, ModelBundle), ExperimentError> {
        self.fit_with(
            &AreaSet::of_scale(scale),
            PopulationSource::Twitter,
            scale.name().to_string(),
        )
    }

    /// Mobility fitting that also assembles the persistable
    /// [`ModelBundle`]: the four fitted artifacts, the area metadata
    /// and population vector they were fitted against, and the shared
    /// pairwise geometry (an [`Arc`] clone of the area set's cache, so
    /// saving an artifact adds no geometry rebuild). Predictions made
    /// through the bundle are bit-identical to predicting with the
    /// report's fits directly.
    ///
    /// # Errors
    ///
    /// As [`Experiment::mobility`].
    pub fn fit_with(
        &self,
        areas: &AreaSet,
        source: PopulationSource,
        label: String,
    ) -> Result<(MobilityReport, ModelBundle), ExperimentError> {
        let od = extract_trips(self.dataset, areas);
        let populations = match source {
            PopulationSource::Census => areas.census_populations(),
            PopulationSource::Twitter => estimate_population(self.dataset, &self.index, areas)?
                .areas
                .iter()
                .map(|a| a.twitter_users as f64)
                .collect(),
        };
        let observations = {
            let _span = tweetmob_obs::span!("odmatrix");
            tweetmob_obs::gauge!("odmatrix/cells")
                .set(i64::try_from(areas.len() * areas.len()).unwrap_or(i64::MAX));
            tweetmob_obs::gauge!("odmatrix/nonzero_pairs")
                .set(i64::try_from(od.nonzero_pairs()).unwrap_or(i64::MAX));
            build_observations(areas, &populations, &od, self.geometry_cache)
        };
        let gravity4 = Gravity4Fit::fit(&observations)?;
        let gravity2 = Gravity2Fit::fit(&observations)?;
        let radiation = RadiationFit::fit_columnar(&observations)?;
        let opportunities = OpportunitiesFit::fit_columnar(&observations)?;
        let evaluations = vec![
            evaluate(&gravity4, &observations)?,
            evaluate(&gravity2, &observations)?,
            evaluate(&radiation, &observations)?,
            evaluate(&opportunities, &observations)?,
        ];
        let report = MobilityReport {
            label: label.clone(),
            od_total: od.total(),
            nonzero_pairs: od.nonzero_pairs(),
            observations,
            gravity4,
            gravity2,
            radiation,
            opportunities,
            evaluations,
        };
        let geometry = if self.geometry_cache {
            Arc::clone(areas.geometry())
        } else {
            Arc::new(PairGeometry::build_direct(&areas.centers()))
        };
        let bundle = ModelBundle::new(
            BundleMeta {
                label,
                population_source: source.key().to_string(),
                radius_km: areas.radius_km(),
            },
            areas
                .areas()
                .iter()
                .map(|a| BundleArea {
                    name: a.name.to_string(),
                    center: a.center,
                    census_population: a.population as f64,
                })
                .collect(),
            populations,
            FittedModelSet {
                gravity4,
                gravity2,
                radiation,
                opportunities,
            },
            geometry,
        );
        Ok((report, bundle))
    }

    /// Table II: the three scales with their model scores.
    ///
    /// # Errors
    ///
    /// As [`Experiment::mobility`].
    pub fn scale_comparison(&self) -> Result<Vec<ScaleComparison>, ExperimentError> {
        Scale::ALL
            .iter()
            .map(|&s| {
                Ok(ScaleComparison {
                    scale: s.name(),
                    report: self.mobility(s)?,
                })
            })
            .collect()
    }
}

/// Assembles `FlowObservation`s for every ordered pair of areas: `m`, `n`
/// from `populations`, `d` from centre distances, `s` from the
/// intervening-population structure over the same population vector, `T`
/// from the OD matrix.
///
/// With `use_cache` the distances and rank lists come from the area
/// set's shared [`PairGeometry`](tweetmob_geo::PairGeometry); without it
/// everything is recomputed through the scalar per-pair path. The two
/// paths produce bit-identical observations (asserted by the
/// `geometry_equivalence` suite).
fn build_observations(
    areas: &AreaSet,
    populations: &[f64],
    od: &OdMatrix,
    use_cache: bool,
) -> Vec<FlowObservation> {
    use tweetmob_stats::check::{debug_assert_finite_slice, debug_assert_nonneg};
    // This is where integer OD counts and estimated populations become
    // the floats every downstream fit consumes — the last place a NaN or
    // negative estimate can be caught near its source.
    debug_assert_finite_slice(populations, "area populations");
    let centers = areas.centers();
    let intervening = if use_cache {
        InterveningPopulation::from_geometry(std::sync::Arc::clone(areas.geometry()), populations)
    } else {
        InterveningPopulation::build_direct(&centers, populations)
    };
    let distance = |i: usize, j: usize| {
        if use_cache {
            areas.distance_km(i, j)
        } else {
            tweetmob_geo::haversine_km(centers[i], centers[j])
        }
    };
    od.iter_pairs()
        .map(|(i, j, count)| FlowObservation {
            origin_population: debug_assert_nonneg(populations[i], "origin population"),
            dest_population: debug_assert_nonneg(populations[j], "destination population"),
            distance_km: debug_assert_nonneg(distance(i, j), "pair distance"),
            intervening_population: debug_assert_nonneg(
                intervening.s(i, j),
                "intervening population",
            ),
            observed_flow: count as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use tweetmob_synth::{GeneratorConfig, TweetGenerator};

    /// One shared medium dataset for the expensive end-to-end tests.
    fn medium() -> &'static TweetDataset {
        static DS: OnceLock<TweetDataset> = OnceLock::new();
        DS.get_or_init(|| TweetGenerator::new(GeneratorConfig::default()).generate())
    }

    #[test]
    fn population_correlation_strong_at_national_scale() {
        let exp = Experiment::new(medium());
        let pop = exp.population_correlation(Scale::National).unwrap();
        assert_eq!(pop.areas.len(), 20);
        assert!(
            pop.correlation.r > 0.8,
            "national population r = {}",
            pop.correlation.r
        );
        assert!(pop.correlation.p_two_tailed < 1e-4);
        // Sydney must dominate the counts.
        let sydney = &pop.areas[0];
        assert!(pop
            .areas
            .iter()
            .all(|a| a.twitter_users <= sydney.twitter_users));
    }

    #[test]
    fn pooled_population_matches_paper_shape() {
        let exp = Experiment::new(medium());
        let pooled = exp.pooled_population().unwrap();
        assert_eq!(pooled.pooled.n, 60, "paper pools 60 samples");
        assert!(
            pooled.pooled.r > 0.7,
            "pooled r = {} (paper: 0.816)",
            pooled.pooled.r
        );
        assert!(pooled.pooled.p_two_tailed < 1e-8);
    }

    #[test]
    fn metro_correlation_degrades_at_tiny_radius() {
        // Fig. 3(b): shrinking ε from 2 km to 0.5 km increases error.
        let exp = Experiment::new(medium());
        let normal = exp
            .population_correlation_with_radius(Scale::Metropolitan, 2.0)
            .unwrap();
        let tiny = exp
            .population_correlation_with_radius(Scale::Metropolitan, 0.5)
            .unwrap();
        // The tiny radius sees far fewer users.
        let users_normal: u64 = normal.areas.iter().map(|a| a.twitter_users).sum();
        let users_tiny: u64 = tiny.areas.iter().map(|a| a.twitter_users).sum();
        assert!(
            users_tiny * 2 < users_normal,
            "tiny {users_tiny} vs normal {users_normal}"
        );
    }

    #[test]
    fn mobility_report_fits_all_models() {
        let exp = Experiment::new(medium());
        let report = exp.mobility(Scale::National).unwrap();
        assert!(report.od_total > 100, "od total {}", report.od_total);
        assert_eq!(report.observations.len(), 380); // 20·19 ordered pairs
        assert!(report.gravity2.gamma > 0.5 && report.gravity2.gamma < 4.0);
        assert_eq!(report.evaluations.len(), 4);
        assert!(report.evaluation("Radiation").is_some());
    }

    #[test]
    fn gravity_beats_radiation_at_every_scale() {
        // The paper's headline finding (Table II): Gravity outperforms
        // Radiation in Australia. Pearson ordering holds scale by scale;
        // hit rates are compared via Gravity 4Param (the paper's national
        // gravity-vs-radiation hit-rate gap narrows in our smaller
        // sample, so the 2-param margin there is within noise).
        let exp = Experiment::new(medium());
        let mut g2_hits = 0.0;
        let mut rad_hits = 0.0;
        for scale in Scale::ALL {
            let report = exp.mobility(scale).unwrap();
            let g2 = report.evaluation("Gravity 2Param").unwrap();
            let rad = report.evaluation("Radiation").unwrap();
            assert!(
                g2.pearson > rad.pearson,
                "{}: gravity r = {} vs radiation r = {}",
                scale.name(),
                g2.pearson,
                rad.pearson
            );
            g2_hits += g2.hit_rate_50;
            rad_hits += rad.hit_rate_50;
        }
        assert!(
            g2_hits > rad_hits,
            "mean gravity2 hit {} vs radiation {}",
            g2_hits / 3.0,
            rad_hits / 3.0
        );
    }

    #[test]
    fn scale_comparison_produces_table_two() {
        let exp = Experiment::new(medium());
        let table = exp.scale_comparison().unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table[0].scale, "National");
        for row in &table {
            let g2 = row.report.evaluation("Gravity 2Param").unwrap();
            assert!(
                g2.pearson > 0.5,
                "{}: gravity r = {}",
                row.scale,
                g2.pearson
            );
        }
    }

    #[test]
    fn geometry_cache_toggle_is_bit_identical() {
        let ds = medium();
        let cached = Experiment::new(ds).mobility(Scale::National).unwrap();
        let mut exp = Experiment::new(ds);
        assert!(exp.geometry_cache());
        exp.set_geometry_cache(false);
        assert!(!exp.geometry_cache());
        let direct = exp.mobility(Scale::National).unwrap();
        assert_eq!(
            serde_json::to_string(&cached).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
    }

    #[test]
    fn fit_bundle_round_trips_and_bit_matches_report() {
        use tweetmob_models::{MobilityModel, ModelKind};
        let exp = Experiment::new(medium());
        let (report, bundle) = exp.fit(Scale::National).unwrap();
        assert_eq!(bundle.len(), 20);
        assert_eq!(bundle.meta().population_source, "twitter");
        assert_eq!(bundle.models().gravity2, report.gravity2);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let loaded = ModelBundle::load(&buf[..]).unwrap();
        assert_eq!(loaded.models(), bundle.models());
        for (i, j) in [(0usize, 1usize), (3, 7), (19, 0)] {
            let obs = bundle.observation(i, j).unwrap();
            assert_eq!(
                loaded.predict(ModelKind::Gravity4, i, j).unwrap().to_bits(),
                report.gravity4.predict(&obs).to_bits()
            );
            assert_eq!(
                loaded.predict(ModelKind::Radiation, i, j).unwrap().to_bits(),
                report.radiation.predict(&obs).to_bits()
            );
        }
    }

    #[test]
    fn mobility_with_matches_fit_with_report() {
        let exp = Experiment::new(medium());
        let areas = AreaSet::of_scale(Scale::National);
        let via_wrapper = exp
            .mobility_with(&areas, PopulationSource::Twitter, "x".into())
            .unwrap();
        let (via_fit, _) = exp
            .fit_with(&areas, PopulationSource::Twitter, "x".into())
            .unwrap();
        assert_eq!(
            serde_json::to_string(&via_wrapper).unwrap(),
            serde_json::to_string(&via_fit).unwrap()
        );
    }

    #[test]
    fn population_source_keys_round_trip() {
        for source in [PopulationSource::Twitter, PopulationSource::Census] {
            assert_eq!(PopulationSource::parse(source.key()), Some(source));
        }
        assert_eq!(
            PopulationSource::parse("CENSUS"),
            Some(PopulationSource::Census)
        );
        assert_eq!(PopulationSource::parse("lidar"), None);
    }

    #[test]
    fn census_population_source_also_fits() {
        let exp = Experiment::new(medium());
        let report = exp
            .mobility_with(
                &AreaSet::of_scale(Scale::National),
                PopulationSource::Census,
                "census".into(),
            )
            .unwrap();
        let g2 = report.evaluation("Gravity 2Param").unwrap();
        assert!(g2.pearson > 0.5, "census-fed gravity r = {}", g2.pearson);
    }

    #[test]
    fn report_display_is_readable() {
        let exp = Experiment::new(medium());
        let text = exp.mobility(Scale::National).unwrap().to_string();
        assert!(text.contains("Gravity 4Param"));
        assert!(text.contains("Radiation"));
        assert!(text.contains("trips"));
    }
}
