//! Model-family ablations beyond the paper's three models (DESIGN.md
//! §6 and the paper's future work: "evaluate model performances with
//! more metrics and at more varieties of distances scales").
//!
//! Runs on an existing [`MobilityReport`] — no re-extraction — and adds:
//!
//! * **exponential-deterrence gravity** (`exp(−d/κ)`) and the **Tanner**
//!   combination (`d^−γ·e^{−d/κ}`): which decay family do the flows
//!   follow, and does it change across the paper's three scales?
//! * **doubly-constrained gravity (IPF)**: how much Table-II error is
//!   just unbalanced marginals?

use crate::experiment::MobilityReport;
use tweetmob_models::{
    evaluate, evaluate_vectors, DoublyConstrainedFit, GravityExpFit, ModelError, ModelEvaluation,
    TannerFit,
};

/// The extended model comparison for one scale.
#[derive(Debug)]
pub struct DeterrenceAblation {
    /// Exponential-deterrence gravity fit and score.
    pub gravity_exp: Result<(GravityExpFit, ModelEvaluation), ModelError>,
    /// Tanner (power × exponential) fit and score.
    pub tanner: Result<(TannerFit, ModelEvaluation), ModelError>,
    /// Doubly-constrained IPF score (seeded with the report's fitted
    /// `γ`), plus the sweep count it took to converge.
    pub ipf: Result<(usize, ModelEvaluation), ModelError>,
}

impl DeterrenceAblation {
    /// Every successful evaluation, for table printing.
    pub fn evaluations(&self) -> Vec<&ModelEvaluation> {
        let mut out = Vec::new();
        if let Ok((_, e)) = &self.gravity_exp {
            out.push(e);
        }
        if let Ok((_, e)) = &self.tanner {
            out.push(e);
        }
        if let Ok((_, e)) = &self.ipf {
            out.push(e);
        }
        out
    }
}

/// Number of areas implied by a full ordered-pair observation list
/// (`len = n(n−1)`).
fn n_areas_of(report: &MobilityReport) -> usize {
    let len = report.observations.len() as f64;
    ((1.0 + (1.0 + 4.0 * len).sqrt()) / 2.0).round() as usize
}

/// Runs the ablation on a finished mobility report.
pub fn deterrence_ablation(report: &MobilityReport) -> DeterrenceAblation {
    let gravity_exp = GravityExpFit::fit(&report.observations)
        .and_then(|fit| evaluate(&fit, &report.observations).map(|e| (fit, e)));
    let tanner = TannerFit::fit(&report.observations)
        .and_then(|fit| evaluate(&fit, &report.observations).map(|e| (fit, e)));

    // Rebuild the OD and distance matrices from the observation list
    // (which enumerates ordered pairs in row-major order, diagonal
    // skipped — the shape `OdMatrix::iter_pairs` produces).
    let n = n_areas_of(report);
    let ipf = if n * (n - 1) == report.observations.len() {
        let mut observed = vec![0.0; n * n];
        let mut distances = vec![0.0; n * n];
        let mut k = 0usize;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                observed[i * n + j] = report.observations[k].observed_flow;
                distances[i * n + j] = report.observations[k].distance_km;
                k += 1;
            }
        }
        match DoublyConstrainedFit::fit(n, &observed, &distances, report.gravity2.gamma) {
            Ok(fit) => {
                // Score only off-diagonal pairs, matching the others.
                let mut est = Vec::with_capacity(n * (n - 1));
                let mut obs = Vec::with_capacity(n * (n - 1));
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            est.push(fit.predict(i, j));
                            obs.push(observed[i * n + j]);
                        }
                    }
                }
                evaluate_vectors("Gravity IPF", &est, &obs).map(|e| (fit.iterations, e))
            }
            Err(_) => Err(ModelError::DegenerateFit("IPF failed to converge")),
        }
    } else {
        Err(ModelError::DegenerateFit(
            "observation list is not a full ordered-pair enumeration",
        ))
    };

    DeterrenceAblation {
        gravity_exp,
        tanner,
        ipf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areaset::Scale;
    use crate::experiment::Experiment;
    use std::sync::OnceLock;
    use tweetmob_data::TweetDataset;
    use tweetmob_synth::{GeneratorConfig, TweetGenerator};

    fn medium() -> &'static TweetDataset {
        static DS: OnceLock<TweetDataset> = OnceLock::new();
        DS.get_or_init(|| TweetGenerator::new(GeneratorConfig::default()).generate())
    }

    #[test]
    fn ablation_runs_on_national_scale() {
        let exp = Experiment::new(medium());
        let report = exp.mobility(Scale::National).unwrap();
        let ab = deterrence_ablation(&report);
        // Tanner nests both deterrence families, so it must fit at least
        // as well (in R² terms) as the pure power law.
        let (tanner_fit, tanner_eval) = ab.tanner.as_ref().expect("tanner fits");
        assert!(
            tanner_fit.log_r_squared >= report.gravity2.log_r_squared - 1e-9,
            "tanner R² {} < gravity2 R² {}",
            tanner_fit.log_r_squared,
            report.gravity2.log_r_squared
        );
        assert!(tanner_eval.pearson > 0.5);
        // IPF matches marginals, so its Sørensen index (common part of
        // commuters) must beat the unconstrained gravity's.
        let (_iters, ipf_eval) = ab.ipf.as_ref().expect("ipf converges");
        let g2_eval = report.evaluation("Gravity 2Param").unwrap();
        assert!(
            ipf_eval.sorensen > g2_eval.sorensen,
            "ipf SSI {} vs g2 SSI {}",
            ipf_eval.sorensen,
            g2_eval.sorensen
        );
    }

    #[test]
    fn ablation_exposes_all_three_when_fittable() {
        let exp = Experiment::new(medium());
        let report = exp.mobility(Scale::State).unwrap();
        let ab = deterrence_ablation(&report);
        let evals = ab.evaluations();
        // Exponential may legitimately fail on some data; the other two
        // must be present.
        assert!(evals.len() >= 2, "got {} evaluations", evals.len());
        assert!(ab.tanner.is_ok());
        assert!(ab.ipf.is_ok());
    }

    #[test]
    fn n_areas_inversion() {
        let exp = Experiment::new(medium());
        let report = exp.mobility(Scale::National).unwrap();
        assert_eq!(n_areas_of(&report), 20);
    }
}
