//! Trip extraction from tweet streams.
//!
//! §IV of the paper: "we extract the mobility from Tweets by counting how
//! many pairs of consecutive Tweets appear first at the source area and
//! then the destination area". Consecutive means consecutive *within one
//! user's time-ordered stream*; pairs where either endpoint resolves to
//! no study area, or both resolve to the same area, contribute nothing.

use crate::areaset::AreaSet;
use crate::odmatrix::OdMatrix;
use tweetmob_data::{TweetDataset, UserTweets};

/// Extracts the directed OD matrix of a dataset over an area set.
///
/// Users are sharded by index range over the dataset's CSR user offsets
/// — no per-user view vector is materialised — and each user's
/// coordinate columns go through [`AreaSet::assign_batch`] in one call,
/// so the hot loop is a linear scan over contiguous `lat[]` / `lon[]`
/// slices. Work is dispatched over the shared [`tweetmob_par`] pool per
/// user block; the result is identical at every thread count because
/// each trip increments an independent integer cell count and the drop
/// tallies are commutative sums, and identical to the row-struct
/// reference path ([`extract_trips_reference`]) because the batch
/// assignment is decision-identical to scalar [`AreaSet::assign`].
pub fn extract_trips(dataset: &TweetDataset, areas: &AreaSet) -> OdMatrix {
    let _span = tweetmob_obs::span!("trips");
    let (od, drops) = tweetmob_par::par_map_reduce(
        "trips",
        dataset.n_users(),
        64,
        |range| {
            let mut od = OdMatrix::new(areas.len());
            let mut drops = DropCounts::default();
            let mut codes: Vec<i32> = Vec::new();
            for i in range {
                let view = dataset.user_view(i);
                codes.clear();
                areas.assign_batch(view.lats, view.lons, &mut codes);
                drops.merge(record_codes(&codes, &mut od));
            }
            (od, drops)
        },
        |(mut od, mut drops), (chunk_od, chunk_drops)| {
            od.merge(&chunk_od);
            drops.merge(chunk_drops);
            (od, drops)
        },
    );
    publish_counts(&od, drops);
    od
}

/// Serial row-struct reference for [`extract_trips`]: per-point scalar
/// assignment, one user at a time. Kept for the A/B equivalence suite
/// and the paper-scale bench's columnar-vs-rows speedup column; the
/// batch path must produce a byte-identical matrix.
pub fn extract_trips_reference(dataset: &TweetDataset, areas: &AreaSet) -> OdMatrix {
    let mut od = OdMatrix::new(areas.len());
    for view in dataset.iter_users() {
        extract_user(&view, areas, &mut od);
    }
    od
}

/// Folds one user's assignment codes (area index or `-1`) into `od`,
/// counting the consecutive pairs that contribute no trip.
fn record_codes(codes: &[i32], od: &mut OdMatrix) -> DropCounts {
    let mut drops = DropCounts::default();
    for w in codes.windows(2) {
        match (w[0], w[1]) {
            (a, b) if a >= 0 && b >= 0 && a != b => od.record(a as usize, b as usize),
            (a, b) if a >= 0 && b >= 0 => drops.same_area += 1,
            _ => drops.unassigned += 1,
        }
    }
    drops
}

/// Tallies of consecutive same-user pairs that contribute no trip.
/// Accumulated per chunk and merged on the outer thread, so the published
/// counter totals are deterministic regardless of thread count.
#[derive(Debug, Default, Clone, Copy)]
struct DropCounts {
    /// Both endpoints resolved to the same area.
    same_area: u64,
    /// At least one endpoint resolved to no study area.
    unassigned: u64,
}

impl DropCounts {
    fn merge(&mut self, other: DropCounts) {
        self.same_area += other.same_area;
        self.unassigned += other.unassigned;
    }
}

/// Publishes extraction totals to the global metrics registry.
fn publish_counts(od: &OdMatrix, drops: DropCounts) {
    tweetmob_obs::counter!("trips/extracted").add(od.total());
    tweetmob_obs::counter!("trips/dropped_same_area").add(drops.same_area);
    tweetmob_obs::counter!("trips/dropped_unassigned").add(drops.unassigned);
}

/// Extracts one user's trips into `od` through the scalar assignment
/// path, returning the pairs dropped.
fn extract_user(view: &UserTweets<'_>, areas: &AreaSet, od: &mut OdMatrix) -> DropCounts {
    let mut drops = DropCounts::default();
    let mut prev: Option<usize> = None;
    let mut seen_any = false;
    for p in view.iter_points() {
        let cur = areas.assign(p);
        if seen_any {
            match (prev, cur) {
                (Some(a), Some(b)) if a != b => od.record(a, b),
                (Some(_), Some(_)) => drops.same_area += 1,
                _ => drops.unassigned += 1,
            }
        }
        prev = cur;
        seen_any = true;
    }
    drops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areaset::Scale;
    use tweetmob_data::{Timestamp, Tweet, UserId};
    use tweetmob_geo::Point;

    fn tweet(user: u32, secs: i64, lat: f64, lon: f64) -> Tweet {
        Tweet::new(
            UserId(user),
            Timestamp::from_secs(secs),
            Point::new_unchecked(lat, lon),
        )
    }

    fn national() -> AreaSet {
        AreaSet::of_scale(Scale::National)
    }

    // Area indices at national scale: 0 Sydney, 1 Melbourne, 2 Brisbane.
    const SYD: (f64, f64) = (-33.8688, 151.2093);
    const MEL: (f64, f64) = (-37.8136, 144.9631);
    const BNE: (f64, f64) = (-27.4698, 153.0251);

    #[test]
    fn consecutive_pair_in_two_areas_is_one_trip() {
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.count(0, 1), 1);
        assert_eq!(od.total(), 1);
    }

    #[test]
    fn direction_follows_time_order_not_input_order() {
        // Tweets supplied out of order; the dataset sorts by time.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 900, SYD.0, SYD.1),
            tweet(1, 100, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.count(1, 0), 1, "Melbourne → Sydney");
        assert_eq!(od.count(0, 1), 0);
    }

    #[test]
    fn same_area_pairs_are_not_trips() {
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, SYD.0 + 0.05, SYD.1 + 0.05), // still inside 50 km
            tweet(1, 300, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.total(), 1);
        assert_eq!(od.count(0, 1), 1);
    }

    #[test]
    fn unassigned_tweets_break_the_chain() {
        // Sydney → outback → Melbourne: the outback tweet resolves to no
        // area, so neither pair spans two areas.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, -25.0, 135.0), // middle of nowhere
            tweet(1, 300, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.total(), 0);
    }

    #[test]
    fn chains_count_every_hop() {
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, MEL.0, MEL.1),
            tweet(1, 300, BNE.0, BNE.1),
            tweet(1, 400, SYD.0, SYD.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.count(0, 1), 1);
        assert_eq!(od.count(1, 2), 1);
        assert_eq!(od.count(2, 0), 1);
        assert_eq!(od.total(), 3);
    }

    #[test]
    fn users_do_not_leak_trips_across_streams() {
        // User 1 ends in Sydney; user 2 starts in Melbourne. No trip.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(2, 200, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.total(), 0);
    }

    #[test]
    fn many_users_accumulate() {
        let mut tweets = Vec::new();
        for u in 0..100 {
            tweets.push(tweet(u, 100, SYD.0, SYD.1));
            tweets.push(tweet(u, 200, MEL.0, MEL.1));
        }
        let od = extract_trips(&TweetDataset::from_tweets(tweets), &national());
        assert_eq!(od.count(0, 1), 100);
    }

    #[test]
    fn parallel_matches_serial() {
        // Enough users to trigger the threaded path; compare against a
        // manual serial extraction.
        let mut tweets = Vec::new();
        for u in 0..500 {
            let (a, b) = if u % 3 == 0 { (SYD, MEL) } else { (BNE, SYD) };
            tweets.push(tweet(u, 100, a.0, a.1));
            tweets.push(tweet(u, 200, b.0, b.1));
            if u % 5 == 0 {
                tweets.push(tweet(u, 300, MEL.0, MEL.1));
            }
        }
        let ds = TweetDataset::from_tweets(tweets);
        let areas = national();
        let parallel = extract_trips(&ds, &areas);
        let mut serial = OdMatrix::new(areas.len());
        for view in ds.iter_users() {
            let _ = super::extract_user(&view, &areas, &mut serial);
        }
        assert_eq!(parallel, serial);
        assert_eq!(parallel, extract_trips_reference(&ds, &areas));
    }

    #[test]
    fn thread_count_does_not_change_the_matrix() {
        // 1-vs-8-thread extraction over user shards must be byte-identical
        // (the paper-scale run asserts the same at 6.3M tweets).
        let mut tweets = Vec::new();
        for u in 0..400 {
            let (a, b) = if u % 2 == 0 { (SYD, BNE) } else { (MEL, SYD) };
            tweets.push(tweet(u, 100, a.0, a.1));
            tweets.push(tweet(u, 200, b.0, b.1));
            tweets.push(tweet(u, 300, -25.0, 135.0));
        }
        let ds = TweetDataset::from_tweets(tweets);
        let areas = national();
        let one = tweetmob_par::with_threads(1, || extract_trips(&ds, &areas));
        let eight = tweetmob_par::with_threads(8, || extract_trips(&ds, &areas));
        assert_eq!(one, eight);
        assert_eq!(one, extract_trips_reference(&ds, &areas));
    }

    #[test]
    fn drop_counts_classify_non_trips() {
        let areas = national();
        let mut od = OdMatrix::new(areas.len());
        // Sydney → Sydney (same area) → outback (unassigned) → Melbourne.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, SYD.0 + 0.05, SYD.1 + 0.05),
            tweet(1, 300, -25.0, 135.0),
            tweet(1, 400, MEL.0, MEL.1),
        ]);
        let view = ds.iter_users().next().unwrap();
        let drops = super::extract_user(&view, &areas, &mut od);
        assert_eq!(drops.same_area, 1);
        assert_eq!(drops.unassigned, 2, "both pairs touching the outback tweet");
        assert_eq!(od.total(), 0);
    }

    #[test]
    fn empty_dataset_empty_matrix() {
        let od = extract_trips(&TweetDataset::from_tweets(Vec::new()), &national());
        assert_eq!(od.total(), 0);
        assert_eq!(od.n_areas(), 20);
    }
}
