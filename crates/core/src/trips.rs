//! Trip extraction from tweet streams.
//!
//! §IV of the paper: "we extract the mobility from Tweets by counting how
//! many pairs of consecutive Tweets appear first at the source area and
//! then the destination area". Consecutive means consecutive *within one
//! user's time-ordered stream*; pairs where either endpoint resolves to
//! no study area, or both resolve to the same area, contribute nothing.

use crate::areaset::AreaSet;
use crate::odmatrix::OdMatrix;
use tweetmob_data::TweetDataset;

/// Extracts the directed OD matrix of a dataset over an area set.
///
/// Users are processed independently (their streams are already
/// time-ordered slices); area assignment uses [`AreaSet::assign`] —
/// nearest centre within the search radius. Work is dispatched over the
/// shared [`tweetmob_par`] pool per user block; the result is identical
/// at every thread count because each trip increments an independent
/// integer cell count and the drop tallies are commutative sums.
pub fn extract_trips(dataset: &TweetDataset, areas: &AreaSet) -> OdMatrix {
    let _span = tweetmob_obs::span!("trips");
    let users: Vec<_> = dataset.iter_users().collect();
    let (od, drops) = tweetmob_par::par_map_reduce(
        "trips",
        users.len(),
        64,
        |range| {
            let mut od = OdMatrix::new(areas.len());
            let mut drops = DropCounts::default();
            for view in &users[range] {
                drops.merge(extract_user(view.points, areas, &mut od));
            }
            (od, drops)
        },
        |(mut od, mut drops), (chunk_od, chunk_drops)| {
            od.merge(&chunk_od);
            drops.merge(chunk_drops);
            (od, drops)
        },
    );
    publish_counts(&od, drops);
    od
}

/// Tallies of consecutive same-user pairs that contribute no trip.
/// Accumulated per chunk and merged on the outer thread, so the published
/// counter totals are deterministic regardless of thread count.
#[derive(Debug, Default, Clone, Copy)]
struct DropCounts {
    /// Both endpoints resolved to the same area.
    same_area: u64,
    /// At least one endpoint resolved to no study area.
    unassigned: u64,
}

impl DropCounts {
    fn merge(&mut self, other: DropCounts) {
        self.same_area += other.same_area;
        self.unassigned += other.unassigned;
    }
}

/// Publishes extraction totals to the global metrics registry.
fn publish_counts(od: &OdMatrix, drops: DropCounts) {
    tweetmob_obs::counter!("trips/extracted").add(od.total());
    tweetmob_obs::counter!("trips/dropped_same_area").add(drops.same_area);
    tweetmob_obs::counter!("trips/dropped_unassigned").add(drops.unassigned);
}

/// Extracts one user's trips into `od`, returning the pairs dropped.
fn extract_user(points: &[tweetmob_geo::Point], areas: &AreaSet, od: &mut OdMatrix) -> DropCounts {
    let mut drops = DropCounts::default();
    let mut prev: Option<usize> = None;
    let mut seen_any = false;
    for &p in points {
        let cur = areas.assign(p);
        if seen_any {
            match (prev, cur) {
                (Some(a), Some(b)) if a != b => od.record(a, b),
                (Some(_), Some(_)) => drops.same_area += 1,
                _ => drops.unassigned += 1,
            }
        }
        prev = cur;
        seen_any = true;
    }
    drops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areaset::Scale;
    use tweetmob_data::{Timestamp, Tweet, UserId};
    use tweetmob_geo::Point;

    fn tweet(user: u32, secs: i64, lat: f64, lon: f64) -> Tweet {
        Tweet::new(
            UserId(user),
            Timestamp::from_secs(secs),
            Point::new_unchecked(lat, lon),
        )
    }

    fn national() -> AreaSet {
        AreaSet::of_scale(Scale::National)
    }

    // Area indices at national scale: 0 Sydney, 1 Melbourne, 2 Brisbane.
    const SYD: (f64, f64) = (-33.8688, 151.2093);
    const MEL: (f64, f64) = (-37.8136, 144.9631);
    const BNE: (f64, f64) = (-27.4698, 153.0251);

    #[test]
    fn consecutive_pair_in_two_areas_is_one_trip() {
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.count(0, 1), 1);
        assert_eq!(od.total(), 1);
    }

    #[test]
    fn direction_follows_time_order_not_input_order() {
        // Tweets supplied out of order; the dataset sorts by time.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 900, SYD.0, SYD.1),
            tweet(1, 100, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.count(1, 0), 1, "Melbourne → Sydney");
        assert_eq!(od.count(0, 1), 0);
    }

    #[test]
    fn same_area_pairs_are_not_trips() {
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, SYD.0 + 0.05, SYD.1 + 0.05), // still inside 50 km
            tweet(1, 300, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.total(), 1);
        assert_eq!(od.count(0, 1), 1);
    }

    #[test]
    fn unassigned_tweets_break_the_chain() {
        // Sydney → outback → Melbourne: the outback tweet resolves to no
        // area, so neither pair spans two areas.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, -25.0, 135.0), // middle of nowhere
            tweet(1, 300, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.total(), 0);
    }

    #[test]
    fn chains_count_every_hop() {
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, MEL.0, MEL.1),
            tweet(1, 300, BNE.0, BNE.1),
            tweet(1, 400, SYD.0, SYD.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.count(0, 1), 1);
        assert_eq!(od.count(1, 2), 1);
        assert_eq!(od.count(2, 0), 1);
        assert_eq!(od.total(), 3);
    }

    #[test]
    fn users_do_not_leak_trips_across_streams() {
        // User 1 ends in Sydney; user 2 starts in Melbourne. No trip.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(2, 200, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.total(), 0);
    }

    #[test]
    fn many_users_accumulate() {
        let mut tweets = Vec::new();
        for u in 0..100 {
            tweets.push(tweet(u, 100, SYD.0, SYD.1));
            tweets.push(tweet(u, 200, MEL.0, MEL.1));
        }
        let od = extract_trips(&TweetDataset::from_tweets(tweets), &national());
        assert_eq!(od.count(0, 1), 100);
    }

    #[test]
    fn parallel_matches_serial() {
        // Enough users to trigger the threaded path; compare against a
        // manual serial extraction.
        let mut tweets = Vec::new();
        for u in 0..500 {
            let (a, b) = if u % 3 == 0 { (SYD, MEL) } else { (BNE, SYD) };
            tweets.push(tweet(u, 100, a.0, a.1));
            tweets.push(tweet(u, 200, b.0, b.1));
            if u % 5 == 0 {
                tweets.push(tweet(u, 300, MEL.0, MEL.1));
            }
        }
        let ds = TweetDataset::from_tweets(tweets);
        let areas = national();
        let parallel = extract_trips(&ds, &areas);
        let mut serial = OdMatrix::new(areas.len());
        for view in ds.iter_users() {
            let _ = super::extract_user(view.points, &areas, &mut serial);
        }
        assert_eq!(parallel, serial);
    }

    #[test]
    fn drop_counts_classify_non_trips() {
        let areas = national();
        let mut od = OdMatrix::new(areas.len());
        // Sydney → Sydney (same area) → outback (unassigned) → Melbourne.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, SYD.0 + 0.05, SYD.1 + 0.05),
            tweet(1, 300, -25.0, 135.0),
            tweet(1, 400, MEL.0, MEL.1),
        ]);
        let view = ds.iter_users().next().unwrap();
        let drops = super::extract_user(view.points, &areas, &mut od);
        assert_eq!(drops.same_area, 1);
        assert_eq!(drops.unassigned, 2, "both pairs touching the outback tweet");
        assert_eq!(od.total(), 0);
    }

    #[test]
    fn empty_dataset_empty_matrix() {
        let od = extract_trips(&TweetDataset::from_tweets(Vec::new()), &national());
        assert_eq!(od.total(), 0);
        assert_eq!(od.n_areas(), 20);
    }
}
