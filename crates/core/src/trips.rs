//! Trip extraction from tweet streams.
//!
//! §IV of the paper: "we extract the mobility from Tweets by counting how
//! many pairs of consecutive Tweets appear first at the source area and
//! then the destination area". Consecutive means consecutive *within one
//! user's time-ordered stream*; pairs where either endpoint resolves to
//! no study area, or both resolve to the same area, contribute nothing.

use crate::areaset::AreaSet;
use crate::odmatrix::OdMatrix;
use tweetmob_data::TweetDataset;

/// Extracts the directed OD matrix of a dataset over an area set.
///
/// Users are processed independently (their streams are already
/// time-ordered slices); area assignment uses [`AreaSet::assign`] —
/// nearest centre within the search radius. Work is split across threads
/// per user block; the result is identical to the serial order because
/// each trip increments an independent cell count.
pub fn extract_trips(dataset: &TweetDataset, areas: &AreaSet) -> OdMatrix {
    let users: Vec<_> = dataset.iter_users().collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(users.len().max(1));
    if threads <= 1 || users.len() < 64 {
        let mut od = OdMatrix::new(areas.len());
        for view in &users {
            extract_user(view.points, areas, &mut od);
        }
        return od;
    }
    let chunk = users.len().div_ceil(threads);
    let mut merged = OdMatrix::new(areas.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = users
            .chunks(chunk)
            .map(|block| {
                scope.spawn(move |_| {
                    let mut od = OdMatrix::new(areas.len());
                    for view in block {
                        extract_user(view.points, areas, &mut od);
                    }
                    od
                })
            })
            .collect();
        for h in handles {
            // lint: allow(no-panic) — join only fails if the worker already panicked
            merged.merge(&h.join().expect("trip extraction worker panicked"));
        }
    })
    // lint: allow(no-panic) — scope only errs if a child thread panicked
    .expect("trip extraction scope failed");
    merged
}

/// Extracts one user's trips into `od`.
fn extract_user(points: &[tweetmob_geo::Point], areas: &AreaSet, od: &mut OdMatrix) {
    let mut prev: Option<usize> = None;
    for &p in points {
        let cur = areas.assign(p);
        if let (Some(a), Some(b)) = (prev, cur) {
            if a != b {
                od.record(a, b);
            }
        }
        prev = cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areaset::Scale;
    use tweetmob_data::{Timestamp, Tweet, UserId};
    use tweetmob_geo::Point;

    fn tweet(user: u32, secs: i64, lat: f64, lon: f64) -> Tweet {
        Tweet::new(
            UserId(user),
            Timestamp::from_secs(secs),
            Point::new_unchecked(lat, lon),
        )
    }

    fn national() -> AreaSet {
        AreaSet::of_scale(Scale::National)
    }

    // Area indices at national scale: 0 Sydney, 1 Melbourne, 2 Brisbane.
    const SYD: (f64, f64) = (-33.8688, 151.2093);
    const MEL: (f64, f64) = (-37.8136, 144.9631);
    const BNE: (f64, f64) = (-27.4698, 153.0251);

    #[test]
    fn consecutive_pair_in_two_areas_is_one_trip() {
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.count(0, 1), 1);
        assert_eq!(od.total(), 1);
    }

    #[test]
    fn direction_follows_time_order_not_input_order() {
        // Tweets supplied out of order; the dataset sorts by time.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 900, SYD.0, SYD.1),
            tweet(1, 100, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.count(1, 0), 1, "Melbourne → Sydney");
        assert_eq!(od.count(0, 1), 0);
    }

    #[test]
    fn same_area_pairs_are_not_trips() {
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, SYD.0 + 0.05, SYD.1 + 0.05), // still inside 50 km
            tweet(1, 300, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.total(), 1);
        assert_eq!(od.count(0, 1), 1);
    }

    #[test]
    fn unassigned_tweets_break_the_chain() {
        // Sydney → outback → Melbourne: the outback tweet resolves to no
        // area, so neither pair spans two areas.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, -25.0, 135.0), // middle of nowhere
            tweet(1, 300, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.total(), 0);
    }

    #[test]
    fn chains_count_every_hop() {
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(1, 200, MEL.0, MEL.1),
            tweet(1, 300, BNE.0, BNE.1),
            tweet(1, 400, SYD.0, SYD.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.count(0, 1), 1);
        assert_eq!(od.count(1, 2), 1);
        assert_eq!(od.count(2, 0), 1);
        assert_eq!(od.total(), 3);
    }

    #[test]
    fn users_do_not_leak_trips_across_streams() {
        // User 1 ends in Sydney; user 2 starts in Melbourne. No trip.
        let ds = TweetDataset::from_tweets(vec![
            tweet(1, 100, SYD.0, SYD.1),
            tweet(2, 200, MEL.0, MEL.1),
        ]);
        let od = extract_trips(&ds, &national());
        assert_eq!(od.total(), 0);
    }

    #[test]
    fn many_users_accumulate() {
        let mut tweets = Vec::new();
        for u in 0..100 {
            tweets.push(tweet(u, 100, SYD.0, SYD.1));
            tweets.push(tweet(u, 200, MEL.0, MEL.1));
        }
        let od = extract_trips(&TweetDataset::from_tweets(tweets), &national());
        assert_eq!(od.count(0, 1), 100);
    }

    #[test]
    fn parallel_matches_serial() {
        // Enough users to trigger the threaded path; compare against a
        // manual serial extraction.
        let mut tweets = Vec::new();
        for u in 0..500 {
            let (a, b) = if u % 3 == 0 { (SYD, MEL) } else { (BNE, SYD) };
            tweets.push(tweet(u, 100, a.0, a.1));
            tweets.push(tweet(u, 200, b.0, b.1));
            if u % 5 == 0 {
                tweets.push(tweet(u, 300, MEL.0, MEL.1));
            }
        }
        let ds = TweetDataset::from_tweets(tweets);
        let areas = national();
        let parallel = extract_trips(&ds, &areas);
        let mut serial = OdMatrix::new(areas.len());
        for view in ds.iter_users() {
            super::extract_user(view.points, &areas, &mut serial);
        }
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_dataset_empty_matrix() {
        let od = extract_trips(&TweetDataset::from_tweets(Vec::new()), &national());
        assert_eq!(od.total(), 0);
        assert_eq!(od.n_areas(), 20);
    }
}
