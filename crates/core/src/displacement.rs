//! Trip-displacement analysis — "more varieties of distance scales".
//!
//! The mobility literature's first diagnostic of any location stream is
//! the distribution of consecutive-position displacements P(Δr)
//! (González et al. 2008 found truncated power laws in phone data;
//! Hawelka et al. 2014 — the paper's ref. [9] — the same in tweets).
//! This module extracts per-user consecutive-tweet displacements,
//! log-bins them, fits the tail exponent, and splits the mass into the
//! paper's three distance regimes (intra-urban / inter-city / continental).

use serde::Serialize;
use tweetmob_data::TweetDataset;
use tweetmob_geo::TrigPoint;
use tweetmob_stats::binning::{BinStat, LogBins};
use tweetmob_stats::powerlaw::{fit_alpha, PowerLawFit};
use tweetmob_stats::StatsError;

/// Distance regimes used to summarise the displacement mass.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DisplacementShares {
    /// Δr < 5 km: within-venue and intra-suburb moves.
    pub local: f64,
    /// 5 km ≤ Δr < 100 km: intra-metropolitan travel.
    pub metropolitan: f64,
    /// 100 km ≤ Δr < 1,000 km: inter-city (the paper's state scale).
    pub intercity: f64,
    /// Δr ≥ 1,000 km: continental hops (the paper's national scale).
    pub continental: f64,
}

/// The displacement analysis of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct DisplacementProfile {
    /// Consecutive-tweet displacements, km (only pairs with Δr > 0).
    pub n_jumps: usize,
    /// Log-binned PDF of displacements.
    pub pdf: Vec<BinStat>,
    /// Power-law tail fit above 1 km (the GPS-jitter floor), if the
    /// sample supports one.
    pub tail: Option<PowerLawFit>,
    /// Mass shares per distance regime.
    pub shares: DisplacementShares,
    /// Median displacement, km.
    pub median_km: f64,
}

/// Extracts all positive consecutive-tweet displacements, per user.
///
/// Each point's trigonometry is hoisted into a [`TrigPoint`] once and
/// reused for both the jump into and out of it — interior points of a
/// user's trace would otherwise pay the degree→radian and cosine work
/// twice. Distances stay bit-identical to per-pair
/// [`haversine_km`](tweetmob_geo::haversine_km).
pub fn displacements_km(dataset: &TweetDataset) -> Vec<f64> {
    let mut out = Vec::new();
    for view in dataset.iter_users() {
        let mut prev: Option<TrigPoint> = None;
        for p in view.iter_points() {
            let cur = TrigPoint::new(p);
            if let Some(last) = prev {
                let d = last.distance_km(&cur);
                if d > 0.0 {
                    out.push(d);
                }
            }
            prev = Some(cur);
        }
    }
    out
}

/// Runs the full displacement analysis.
///
/// # Errors
///
/// [`StatsError`] when the dataset yields fewer than 10 positive
/// displacements (nothing to profile).
pub fn displacement_profile(dataset: &TweetDataset) -> Result<DisplacementProfile, StatsError> {
    let jumps = displacements_km(dataset);
    if jumps.len() < 10 {
        return Err(StatsError::TooFewSamples {
            needed: 10,
            got: jumps.len(),
        });
    }
    let bins = LogBins::covering(&jumps, 4)?;
    let pdf = bins.pdf(&jumps);
    let tail = fit_alpha(&jumps, 1.0).ok();
    let total = jumps.len() as f64;
    let share =
        |lo: f64, hi: f64| jumps.iter().filter(|&&d| d >= lo && d < hi).count() as f64 / total;
    let shares = DisplacementShares {
        local: share(0.0, 5.0),
        metropolitan: share(5.0, 100.0),
        intercity: share(100.0, 1_000.0),
        continental: share(1_000.0, f64::INFINITY),
    };
    let median_km = tweetmob_stats::descriptive::median(&jumps)?;
    Ok(DisplacementProfile {
        n_jumps: jumps.len(),
        pdf,
        tail,
        shares,
        median_km,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;
    use tweetmob_data::{Timestamp, Tweet, UserId};
    use tweetmob_geo::{destination, Point};
    use tweetmob_synth::{GeneratorConfig, TweetGenerator};

    fn medium() -> &'static TweetDataset {
        static DS: OnceLock<TweetDataset> = OnceLock::new();
        DS.get_or_init(|| TweetGenerator::new(GeneratorConfig::default()).generate())
    }

    #[test]
    fn displacements_are_per_user_consecutive() {
        let base = Point::new_unchecked(-33.0, 151.0);
        let ds = TweetDataset::from_tweets(vec![
            Tweet::new(UserId(1), Timestamp::from_secs(0), base),
            Tweet::new(
                UserId(1),
                Timestamp::from_secs(10),
                destination(base, 90.0, 7.0),
            ),
            // User 2 far away must not create a cross-user jump.
            Tweet::new(
                UserId(2),
                Timestamp::from_secs(5),
                destination(base, 0.0, 500.0),
            ),
        ]);
        let jumps = displacements_km(&ds);
        assert_eq!(jumps.len(), 1);
        assert!((jumps[0] - 7.0).abs() < 0.01);
    }

    #[test]
    fn zero_displacements_are_dropped() {
        let p = Point::new_unchecked(-33.0, 151.0);
        let ds = TweetDataset::from_tweets(vec![
            Tweet::new(UserId(1), Timestamp::from_secs(0), p),
            Tweet::new(UserId(1), Timestamp::from_secs(10), p),
        ]);
        assert!(displacements_km(&ds).is_empty());
    }

    #[test]
    fn profile_of_synthetic_stream_is_multiscale() {
        let profile = displacement_profile(medium()).unwrap();
        assert!(profile.n_jumps > 10_000);
        // Most mass is local (venue jitter + errands)…
        assert!(
            profile.shares.local > 0.5,
            "local share {}",
            profile.shares.local
        );
        // …but all four regimes are populated: the generator produces
        // genuinely multi-scale mobility.
        assert!(profile.shares.metropolitan > 0.01);
        assert!(profile.shares.intercity > 0.005);
        assert!(profile.shares.continental > 0.001);
        let total = profile.shares.local
            + profile.shares.metropolitan
            + profile.shares.intercity
            + profile.shares.continental;
        assert!((total - 1.0).abs() < 1e-9);
        // The tail exists and is heavy (α < 3.5 like every human-mobility
        // study).
        let tail = profile.tail.expect("tail fit");
        assert!(tail.alpha < 3.5, "alpha {}", tail.alpha);
        assert!(profile.median_km < 5.0, "median {}", profile.median_km);
    }

    #[test]
    fn pdf_integrates_to_at_most_one() {
        let profile = displacement_profile(medium()).unwrap();
        let integral: f64 = profile.pdf.iter().map(|b| b.density * (b.hi - b.lo)).sum();
        assert!(integral <= 1.0 + 1e-9);
        assert!(integral > 0.9, "integral {integral}");
    }

    #[test]
    fn too_small_dataset_errors() {
        let p = Point::new_unchecked(-33.0, 151.0);
        let ds = TweetDataset::from_tweets(vec![
            Tweet::new(UserId(1), Timestamp::from_secs(0), p),
            Tweet::new(
                UserId(1),
                Timestamp::from_secs(10),
                destination(p, 90.0, 1.0),
            ),
        ]);
        assert!(displacement_profile(&ds).is_err());
    }
}
