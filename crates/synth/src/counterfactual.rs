//! Counterfactual geographies (DESIGN.md experiment E11).
//!
//! The paper's causal claim is geographic: "Radiation's advantages are
//! not universal, and they may not suit countries that have sparsely and
//! unevenly distributed population, such as Australia or Canada. Unlike
//! U.S.A. where a large population spreads relatively evenly across the
//! country…". This module builds that U.S.-like counterfactual: the same
//! number of people, the same distance-driven travel behaviour, but
//! settlements laid out on a jittered grid filling the landmass.
//!
//! Mechanism being tested: human destination choice is distance-driven
//! (gravity-like). Radiation has no distance term — it sees distance only
//! through the intervening population `s(i, j)`. In a smooth geography,
//! `s ≈ ρπd²` is tightly coupled to distance, so radiation inherits a
//! distance decay and tracks the flows; in Australia's gappy geography,
//! `s` decouples from `d` (it can stay flat across a thousand empty
//! kilometres), so radiation's predictions scatter. Holding the
//! generator fixed and swapping only the world should therefore *shrink*
//! the gravity-vs-radiation gap — which the E11 experiment (and the
//! `counterfactual` regeneration binary) confirms.

use crate::gazetteer::{settlement_radius_km, Area, Place};
use tweetmob_geo::Point;
use tweetmob_stats::rng::SplitMix64;

/// Bounding box of the uniform country's landmass: the Australian
/// continent's span, but *filled* rather than coastal.
const UNIFORM_LAT: (f64, f64) = (-38.0, -16.0);
const UNIFORM_LON: (f64, f64) = (115.0, 150.0);

/// City names for the uniform country (synthetic, deterministic).
fn city_name(index: usize) -> &'static str {
    // A static pool large enough for the default grids; names beyond the
    // pool reuse the last entry (experiments only need stable labels).
    const NAMES: [&str; 64] = [
        "Evenville", "Gridford", "Planum", "Meanwood", "Centroid City",
        "Uniforma", "Lattice Springs", "Isotropia", "Flatrock", "Parity",
        "Homogen", "Tessell", "Quadrant", "Steady", "Regular Falls",
        "Balance", "Midpoint", "Arraytown", "Cell City", "Spacing",
        "Evenmore", "Gridley", "Planefield", "Meanmont", "Centrum",
        "Unity", "Latticeburg", "Isomont", "Flatfield", "Parityville",
        "Homestead", "Tessera", "Quadra", "Steadfast", "Regulus",
        "Balancia", "Midville", "Arrayford", "Cellmont", "Spacerock",
        "Evenfield", "Gridmont", "Planville", "Meanford", "Centerton",
        "Uniburg", "Latticemont", "Isoville", "Flatburg", "Parityfield",
        "Homeville", "Tessmont", "Quadville", "Steadmont", "Regton",
        "Balford", "Midburg", "Arrayville", "Cellford", "Spaceton",
        "Evenburg", "Gridville", "Planmont", "Meanville",
    ];
    NAMES[index.min(NAMES.len() - 1)]
}

/// Builds a uniform country: `nx × ny` cities on a jittered grid, total
/// population `total_population` split with mild log-normal variation
/// (σ = 0.3 — big and small towns exist, but no coastal mega-cities).
///
/// Deterministic in `seed`.
pub fn uniform_country_places(
    nx: usize,
    ny: usize,
    total_population: u64,
    seed: u64,
) -> Vec<Place> {
    assert!(nx >= 2 && ny >= 2, "grid needs at least 2×2 cities");
    let mut rng = SplitMix64::new(seed);
    let n = nx * ny;
    // Raw log-normal weights, then normalise to the total.
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u1 = rng.next_f64().max(1e-300);
            let u2 = rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (0.3 * z).exp()
        })
        .collect();
    let weight_sum: f64 = weights.iter().sum();

    let lat_step = (UNIFORM_LAT.1 - UNIFORM_LAT.0) / ny as f64;
    let lon_step = (UNIFORM_LON.1 - UNIFORM_LON.0) / nx as f64;
    let mut places = Vec::with_capacity(n);
    for gy in 0..ny {
        for gx in 0..nx {
            let i = gy * nx + gx;
            // Jitter within ±25 % of the cell so the lattice is not
            // perfectly regular (a perfect lattice has degenerate
            // distance multiplicity).
            let jlat = (rng.next_f64() - 0.5) * 0.5 * lat_step;
            let jlon = (rng.next_f64() - 0.5) * 0.5 * lon_step;
            let center = Point::new_unchecked(
                UNIFORM_LAT.0 + (gy as f64 + 0.5) * lat_step + jlat,
                UNIFORM_LON.0 + (gx as f64 + 0.5) * lon_step + jlon,
            );
            let population =
                ((weights[i] / weight_sum) * total_population as f64).round().max(1.0) as u64;
            let area = Area {
                name: city_name(i),
                center,
                population,
            };
            places.push(Place {
                area,
                radius_km: settlement_radius_km(population),
            });
        }
    }
    places
}

/// The `k` most populated places of a world, as study areas (descending
/// population — the shape every paper scale uses).
pub fn top_areas(places: &[Place], k: usize) -> Vec<Area> {
    let mut areas: Vec<Area> = places.iter().map(|p| p.area).collect();
    areas.sort_by_key(|a| std::cmp::Reverse(a.population));
    areas.truncate(k);
    areas
}

#[cfg(test)]
mod tests {
    use super::*;
    use tweetmob_geo::haversine_km;
    use tweetmob_stats::concentration::gini;

    #[test]
    fn grid_dimensions_and_total_population() {
        let places = uniform_country_places(8, 6, 17_000_000, 1);
        assert_eq!(places.len(), 48);
        let total: u64 = places.iter().map(|p| p.area.population).sum();
        let want = 17_000_000f64;
        assert!(
            (total as f64 - want).abs() / want < 0.01,
            "total {total} vs {want}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = uniform_country_places(5, 5, 1_000_000, 42);
        let b = uniform_country_places(5, 5, 1_000_000, 42);
        assert_eq!(a, b);
        let c = uniform_country_places(5, 5, 1_000_000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn cities_fill_the_interior() {
        let places = uniform_country_places(8, 6, 17_000_000, 7);
        // Some city must sit deep inland (the Australian world has none
        // within 300 km of the continental centre).
        let interior = Point::new_unchecked(-26.0, 133.0);
        let nearest = places
            .iter()
            .map(|p| haversine_km(interior, p.area.center))
            .fold(f64::INFINITY, f64::min);
        assert!(nearest < 400.0, "nearest city {nearest} km from centre");
    }

    #[test]
    fn uniform_world_less_concentrated_than_australia() {
        let uniform = uniform_country_places(8, 6, 17_000_000, 3);
        let upops: Vec<f64> = uniform.iter().map(|p| p.area.population as f64).collect();
        let apops: Vec<f64> = crate::gazetteer::world_places()
            .iter()
            .map(|p| p.area.population as f64)
            .collect();
        let ug = gini(&upops).unwrap();
        let ag = gini(&apops).unwrap();
        assert!(
            ug + 0.2 < ag,
            "uniform gini {ug:.2} should be well below australia {ag:.2}"
        );
    }

    #[test]
    fn top_areas_sorted_descending() {
        let places = uniform_country_places(6, 5, 5_000_000, 9);
        let areas = top_areas(&places, 20);
        assert_eq!(areas.len(), 20);
        for w in areas.windows(2) {
            assert!(w[0].population >= w[1].population);
        }
        // Top area is genuinely the max of the world.
        let max = places.iter().map(|p| p.area.population).max().unwrap();
        assert_eq!(areas[0].population, max);
    }

    #[test]
    fn jittered_grid_has_distinct_pairwise_distances() {
        let places = uniform_country_places(4, 4, 1_000_000, 5);
        let mut dists = Vec::new();
        for i in 0..places.len() {
            for j in (i + 1)..places.len() {
                dists.push(haversine_km(places[i].area.center, places[j].area.center));
            }
        }
        dists.sort_by(f64::total_cmp);
        let duplicates = dists.windows(2).filter(|w| (w[0] - w[1]).abs() < 1e-6).count();
        assert_eq!(duplicates, 0, "jitter should break lattice degeneracy");
    }

    #[test]
    #[should_panic(expected = "grid needs at least 2×2 cities")]
    fn tiny_grid_rejected() {
        uniform_country_places(1, 5, 1_000, 0);
    }
}
