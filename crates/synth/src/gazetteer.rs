//! Embedded gazetteer of Australian places.
//!
//! The paper's three study scales are the 20 most populated Australian
//! cities (national), the 20 most populated NSW cities (state), and the 20
//! most populated Sydney suburbs (metropolitan), with census populations
//! from ABS 3218.0 (2012-13). Coordinates below are the standard published
//! city/suburb centres; populations are approximations of the 2012-13
//! figures (DESIGN.md §2 records this substitution — only relative
//! magnitudes matter for every experiment).
//!
//! For the synthetic *world* (the places users live in and travel
//! between), Sydney is decomposed into its 20 suburbs — carrying the
//! whole Sydney census population, scaled proportionally — so that
//! metropolitan-scale structure exists, and ~35 regional background
//! towns are added so that the continent's coastal, discontinuous
//! population layout — the geographic feature the paper blames for
//! Radiation's misfit — is present in the generated data.

use tweetmob_geo::Point;

/// A named place with a census population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Area {
    /// Place name (unique across the gazetteer).
    pub name: &'static str,
    /// Geographic centre.
    pub center: Point,
    /// Census population (approximate 2012-13 figure).
    pub population: u64,
}

const fn area(name: &'static str, lat: f64, lon: f64, population: u64) -> Area {
    Area {
        name,
        center: Point::new_unchecked(lat, lon),
        population,
    }
}

/// The 20 most populated Australian cities (significant urban areas) —
/// the paper's **national** scale. Search radius: 50 km.
pub const NATIONAL_TOP20: [Area; 20] = [
    area("Sydney", -33.8688, 151.2093, 4_757_000),
    area("Melbourne", -37.8136, 144.9631, 4_246_000),
    area("Brisbane", -27.4698, 153.0251, 2_190_000),
    area("Perth", -31.9523, 115.8613, 1_898_000),
    area("Adelaide", -34.9285, 138.6007, 1_277_000),
    area("Gold Coast", -28.0167, 153.4000, 614_000),
    area("Newcastle", -32.9283, 151.7817, 431_000),
    area("Canberra", -35.2809, 149.1300, 423_000),
    area("Sunshine Coast", -26.6500, 153.0667, 297_000),
    area("Wollongong", -34.4278, 150.8931, 289_000),
    area("Hobart", -42.8821, 147.3272, 217_000),
    area("Geelong", -38.1499, 144.3617, 184_000),
    area("Townsville", -19.2590, 146.8169, 179_000),
    area("Cairns", -16.9186, 145.7781, 147_000),
    area("Darwin", -12.4634, 130.8456, 132_000),
    area("Toowoomba", -27.5598, 151.9507, 114_000),
    area("Ballarat", -37.5622, 143.8503, 99_000),
    area("Bendigo", -36.7570, 144.2794, 92_000),
    area("Albury-Wodonga", -36.0737, 146.9135, 88_000),
    area("Launceston", -41.4332, 147.1441, 86_000),
];

/// The 20 most populated cities of New South Wales — the paper's
/// **state** scale. Search radius: 25 km.
pub const NSW_TOP20: [Area; 20] = [
    area("Sydney", -33.8688, 151.2093, 4_757_000),
    area("Newcastle", -32.9283, 151.7817, 431_000),
    area("Central Coast", -33.4269, 151.3428, 308_000),
    area("Wollongong", -34.4278, 150.8931, 289_000),
    area("Coffs Harbour", -30.2963, 153.1135, 68_000),
    area("Wagga Wagga", -35.1080, 147.3598, 54_000),
    area("Albury", -36.0806, 146.9158, 51_000),
    area("Port Macquarie", -31.4333, 152.9000, 45_000),
    area("Tamworth", -31.0833, 150.9167, 42_000),
    area("Orange", -33.2833, 149.1000, 39_000),
    area("Dubbo", -32.2569, 148.6011, 37_000),
    area("Queanbeyan", -35.3549, 149.2316, 37_000),
    area("Bathurst", -33.4194, 149.5775, 35_000),
    area("Nowra", -34.8833, 150.6000, 34_000),
    area("Lismore", -28.8135, 153.2773, 29_000),
    area("Armidale", -30.5000, 151.6500, 23_000),
    area("Goulburn", -34.7547, 149.6186, 22_000),
    area("Cessnock", -32.8342, 151.3555, 22_000),
    area("Grafton", -29.6833, 152.9333, 19_000),
    area("Griffith", -34.2900, 146.0400, 18_000),
];

/// The 20 most populated Sydney suburbs — the paper's **metropolitan**
/// scale. Search radius: 2 km (sensitivity variant: 0.5 km).
pub const SYDNEY_SUBURBS_TOP20: [Area; 20] = [
    area("Blacktown", -33.7710, 150.9063, 47_000),
    area("Castle Hill", -33.7319, 151.0042, 37_000),
    area("Auburn", -33.8494, 151.0327, 37_000),
    area("Baulkham Hills", -33.7646, 150.9929, 34_000),
    area("Bankstown", -33.9181, 151.0352, 32_000),
    area("Randwick", -33.9167, 151.2411, 30_000),
    area("Maroubra", -33.9500, 151.2430, 29_500),
    area("Liverpool", -33.9200, 150.9239, 27_000),
    area("Marrickville", -33.9111, 151.1549, 26_500),
    area("Parramatta", -33.8150, 151.0010, 26_000),
    area("Dee Why", -33.7529, 151.2854, 21_500),
    area("Hornsby", -33.7049, 151.0997, 21_400),
    area("Chatswood", -33.7969, 151.1831, 21_200),
    area("Cabramatta", -33.8947, 150.9357, 21_100),
    area("Epping", -33.7727, 151.0818, 20_200),
    area("Fairfield", -33.8730, 150.9561, 18_100),
    area("Cronulla", -34.0581, 151.1543, 18_000),
    area("Ryde", -33.8150, 151.1060, 17_000),
    area("Manly", -33.7971, 151.2858, 15_900),
    area("Bondi", -33.8915, 151.2767, 11_700),
];

/// Regional background towns: not part of any study scale, but present in
/// the world so that (a) the Fig. 1 density map shows the real coastal
/// settlement pattern and (b) the Radiation model's intervening-population
/// term `s(i, j)` has genuine structure between the study areas.
pub const BACKGROUND_TOWNS: [Area; 35] = [
    area("Mackay", -21.1411, 149.1860, 81_000),
    area("Rockhampton", -23.3781, 150.5100, 79_000),
    area("Bundaberg", -24.8661, 152.3489, 70_000),
    area("Bunbury", -33.3271, 115.6414, 71_000),
    area("Hervey Bay", -25.2882, 152.8234, 52_000),
    area("Mildura", -34.2080, 142.1246, 50_000),
    area("Shepparton", -36.3833, 145.4000, 49_000),
    area("Gladstone", -23.8489, 151.2625, 45_000),
    area("Mount Gambier", -37.8284, 140.7807, 28_000),
    area("Warrnambool", -38.3818, 142.4880, 34_000),
    area("Traralgon", -38.1957, 146.5408, 25_000),
    area("Kalgoorlie", -30.7489, 121.4658, 31_000),
    area("Geraldton", -28.7774, 114.6150, 36_000),
    area("Albany", -35.0269, 117.8837, 34_000),
    area("Alice Springs", -23.6980, 133.8807, 28_000),
    area("Devonport", -41.1789, 146.3494, 25_000),
    area("Burnie", -41.0520, 145.9030, 20_000),
    area("Wangaratta", -36.3570, 146.3125, 19_000),
    area("Mount Isa", -20.7256, 139.4927, 21_000),
    area("Whyalla", -33.0328, 137.5609, 22_000),
    area("Murray Bridge", -35.1199, 139.2734, 18_000),
    area("Port Lincoln", -34.7323, 135.8588, 16_000),
    area("Port Augusta", -32.4925, 137.7658, 14_000),
    area("Broome", -17.9614, 122.2359, 14_000),
    area("Port Hedland", -20.3109, 118.6011, 15_000),
    area("Karratha", -20.7364, 116.8464, 16_000),
    area("Broken Hill", -31.9539, 141.4539, 19_000),
    area("Gympie", -26.1898, 152.6659, 18_000),
    area("Warwick", -28.2190, 152.0344, 15_000),
    area("Byron Bay", -28.6474, 153.6020, 9_000),
    area("Esperance", -33.8613, 121.8910, 14_000),
    area("Katherine", -14.4652, 132.2635, 10_000),
    area("Emerald", -23.5270, 148.1614, 14_000),
    area("Busselton", -33.6525, 115.3456, 30_000),
    area("Victor Harbor", -35.5504, 138.6216, 14_000),
];

/// Sum of the Sydney suburb census populations (used to derive the
/// uniform scale factor that spreads Sydney's total across them).
pub fn sydney_suburbs_total() -> u64 {
    SYDNEY_SUBURBS_TOP20.iter().map(|a| a.population).sum()
}

/// A place in the synthetic world: where users live and travel between.
///
/// The world decomposes Sydney into its 20 suburbs plus a residual blob,
/// so one gazetteer serves all three study scales coherently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Place {
    /// Underlying area (name, centre, population share).
    pub area: Area,
    /// Characteristic settlement radius, km — how far homes scatter from
    /// the centre. Scales sub-linearly with population.
    pub radius_km: f64,
}

/// Characteristic settlement radius for a population: ~1.5 km for a
/// 1,000-person town growing as `pop^0.35` (≈ 4 km at 20 k, ≈ 28 km at
/// 4.7 M — about right for Australian cities).
pub fn settlement_radius_km(population: u64) -> f64 {
    1.5 * (population.max(1) as f64 / 1_000.0).powf(0.35)
}

/// The full synthetic world: every distinct place a user can be homed in
/// or travel to.
///
/// Sydney never enters as one aggregate node: its whole census
/// population is distributed across the 20 suburbs **proportionally to
/// suburb population** (each suburb's world population is its census
/// population scaled by `Sydney total / Σ suburbs`). A monolithic
/// "rest of Sydney" blob would flood every suburb's 2 km search disc
/// with users uncorrelated to that suburb's size, destroying the
/// metropolitan-scale population signal the paper measures; the uniform
/// scale factor instead is exactly what the paper's rescaling constant
/// `C` absorbs.
pub fn world_places() -> Vec<Place> {
    let mut places: Vec<Area> = Vec::new();
    let mut push_unique = |a: Area| {
        if !places.iter().any(|p| p.name == a.name) {
            places.push(a);
        }
    };
    let sydney_total = NATIONAL_TOP20[0].population;
    let suburb_scale = sydney_total as f64 / sydney_suburbs_total() as f64;
    for a in SYDNEY_SUBURBS_TOP20 {
        push_unique(Area {
            population: (a.population as f64 * suburb_scale).round() as u64,
            ..a
        });
    }
    for a in NATIONAL_TOP20.into_iter().skip(1) {
        push_unique(a);
    }
    for a in NSW_TOP20.into_iter().skip(1) {
        push_unique(a);
    }
    for a in BACKGROUND_TOWNS {
        push_unique(a);
    }
    places
        .into_iter()
        .map(|a| {
            let mut radius = settlement_radius_km(a.population);
            if SYDNEY_SUBURBS_TOP20.iter().any(|s| s.name == a.name) {
                // Suburbs are geographically compact regardless of the
                // population they carry; a wide scatter would bleed
                // users into neighbouring suburbs' search discs.
                radius = radius.min(2.0);
            }
            Place { area: a, radius_km: radius }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tweetmob_geo::{haversine_km, AUSTRALIA_BBOX};

    #[test]
    fn scale_lists_have_twenty_areas_each() {
        assert_eq!(NATIONAL_TOP20.len(), 20);
        assert_eq!(NSW_TOP20.len(), 20);
        assert_eq!(SYDNEY_SUBURBS_TOP20.len(), 20);
    }

    #[test]
    fn all_areas_inside_australia_bbox() {
        for a in NATIONAL_TOP20
            .iter()
            .chain(&NSW_TOP20)
            .chain(&SYDNEY_SUBURBS_TOP20)
            .chain(&BACKGROUND_TOWNS)
        {
            assert!(
                AUSTRALIA_BBOX.contains(a.center),
                "{} at {} outside bbox",
                a.name,
                a.center
            );
        }
    }

    #[test]
    fn scale_lists_sorted_by_population_descending() {
        for list in [&NATIONAL_TOP20[..], &NSW_TOP20[..], &SYDNEY_SUBURBS_TOP20[..]] {
            for w in list.windows(2) {
                assert!(
                    w[0].population >= w[1].population,
                    "{} ({}) < {} ({})",
                    w[0].name,
                    w[0].population,
                    w[1].name,
                    w[1].population
                );
            }
        }
    }

    #[test]
    fn names_unique_within_each_list() {
        for list in [
            &NATIONAL_TOP20[..],
            &NSW_TOP20[..],
            &SYDNEY_SUBURBS_TOP20[..],
            &BACKGROUND_TOWNS[..],
        ] {
            let mut names: Vec<&str> = list.iter().map(|a| a.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), list.len());
        }
    }

    #[test]
    fn suburbs_are_within_sydney_metro() {
        let sydney = NATIONAL_TOP20[0].center;
        for s in &SYDNEY_SUBURBS_TOP20 {
            let d = haversine_km(sydney, s.center);
            assert!(d < 40.0, "{} is {d:.0} km from Sydney centre", s.name);
        }
    }

    #[test]
    fn paper_scale_mean_distances_roughly_match() {
        // Paper §III: average inter-area distances 1422 km (national),
        // 341 km (state), 7.5 km (metropolitan). Bands are generous — the
        // gazetteer is approximate, and our suburb list spans the whole
        // Sydney metro (~20 km mean) where the paper's evidently
        // clustered more centrally.
        let mean_dist = |areas: &[Area]| {
            let mut sum = 0.0;
            let mut n = 0u32;
            for i in 0..areas.len() {
                for j in (i + 1)..areas.len() {
                    sum += haversine_km(areas[i].center, areas[j].center);
                    n += 1;
                }
            }
            sum / n as f64
        };
        let national = mean_dist(&NATIONAL_TOP20);
        let state = mean_dist(&NSW_TOP20);
        let metro = mean_dist(&SYDNEY_SUBURBS_TOP20);
        assert!((900.0..2000.0).contains(&national), "national {national}");
        assert!((200.0..500.0).contains(&state), "state {state}");
        assert!((4.0..25.0).contains(&metro), "metro {metro}");
        assert!(national > state && state > metro);
    }

    #[test]
    fn world_places_are_unique_and_cover_scales() {
        let world = world_places();
        let mut names: Vec<&str> = world.iter().map(|p| p.area.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), world.len(), "duplicate place names");
        // Sydney must be decomposed into suburbs, not aggregated.
        assert!(!world.iter().any(|p| p.area.name == "Sydney"));
        // Everything else from the study scales must be present.
        for a in NATIONAL_TOP20.iter().skip(1).chain(NSW_TOP20.iter().skip(1)) {
            assert!(
                world.iter().any(|p| p.area.name == a.name),
                "missing {}",
                a.name
            );
        }
        assert!(world.len() >= 80, "world has {} places", world.len());
    }

    #[test]
    fn world_population_approximates_national_totals() {
        let world = world_places();
        let world_total: u64 = world.iter().map(|p| p.area.population).sum();
        // Should be within the ballpark of the summed gazetteer (~17 M of
        // Australia's 23 M live in the listed places).
        assert!(world_total > 10_000_000 && world_total < 25_000_000);
        // The scaled suburbs reconstruct Sydney's census population.
        let sydney_parts: u64 = world
            .iter()
            .filter(|p| SYDNEY_SUBURBS_TOP20.iter().any(|s| s.name == p.area.name))
            .map(|p| p.area.population)
            .sum();
        let want = NATIONAL_TOP20[0].population;
        assert!(
            (sydney_parts as i64 - want as i64).unsigned_abs() < 100,
            "suburbs carry {sydney_parts}, Sydney census {want}"
        );
        // And each suburb's world population stays proportional to its
        // census population (uniform scale factor).
        let scale = sydney_parts as f64 / sydney_suburbs_total() as f64;
        for s in &SYDNEY_SUBURBS_TOP20 {
            let w = world.iter().find(|p| p.area.name == s.name).unwrap();
            let expect = s.population as f64 * scale;
            assert!((w.area.population as f64 - expect).abs() / expect < 0.01);
        }
    }

    #[test]
    fn settlement_radius_scales_sensibly() {
        assert!(settlement_radius_km(1_000) < 2.0);
        let r20k = settlement_radius_km(20_000);
        assert!((2.0..8.0).contains(&r20k), "20k town radius {r20k}");
        let r5m = settlement_radius_km(4_700_000);
        assert!((15.0..45.0).contains(&r5m), "metro radius {r5m}");
        assert!(settlement_radius_km(0) > 0.0); // degenerate input safe
    }
}
