//! # tweetmob-synth
//!
//! Synthetic Australian geo-tagged tweet-stream generator — the
//! substitution for the paper's proprietary 6.3 M-tweet Twitter dataset
//! (DESIGN.md §2).
//!
//! The generator reproduces every statistical property the paper's
//! experiments depend on, over the *real* Australian geography (an
//! embedded gazetteer of cities, NSW towns and Sydney suburbs with census
//! populations):
//!
//! * power-law tweets-per-user and heavy-tailed waiting times (Fig. 2,
//!   Table I calibration: ≈ 13.3 tweets/user, ≈ 35.5 h mean gap);
//! * homes assigned ∝ census population with frozen per-place adoption
//!   bias (Fig. 3 scatter);
//! * trips from a two-regime gravity kernel with frozen pair noise
//!   (Fig. 4 / Table II: Gravity fits well but imperfectly; Radiation
//!   misfits because of the real coastal population layout — it is never
//!   used in generation).
//!
//! Everything is deterministic given [`GeneratorConfig::seed`], including
//! under multi-threaded generation.
//!
//! ## Example
//!
//! ```
//! use tweetmob_synth::{GeneratorConfig, TweetGenerator};
//!
//! let mut cfg = GeneratorConfig::small();
//! cfg.n_users = 100;
//! let dataset = TweetGenerator::new(cfg).generate();
//! assert_eq!(dataset.n_users(), 100);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` guards are deliberate: they also reject NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod config;
pub mod counterfactual;
pub mod gazetteer;
pub mod kernel;
pub mod sampling;

mod generator;

pub use config::{ConfigError, GeneratorConfig};
pub use gazetteer::{
    Area, Place, BACKGROUND_TOWNS, NATIONAL_TOP20, NSW_TOP20, SYDNEY_SUBURBS_TOP20,
};
pub use generator::TweetGenerator;
pub use kernel::MobilityKernel;
