//! The tweet-stream generator.
//!
//! One pass per user, seeded independently per user id so the output is
//! bit-identical regardless of thread count:
//!
//! 1. **Home** — a world place sampled ∝ `population · bias`, where the
//!    bias is a frozen per-place log-normal (Twitter adoption varies by
//!    place — this is what spreads the Fig. 3 scatter around `y = x`).
//! 2. **Activity** — tweet count from a floor'd Pareto (Fig. 2a), an
//!    activity span covering a small fraction of the collection window,
//!    and heavy-tailed gaps rescaled to that span (Fig. 2b, Table I).
//! 3. **Movement** — a place-level random walk: each tweet moves with
//!    `move_probability`, returning home or sampling the gravity kernel
//!    ([`crate::kernel::MobilityKernel`]).
//! 4. **Venues** — within a place, a user tweets from up to three frozen
//!    venues (home/work/leisure), sticky per sojourn, plus GPS jitter and
//!    occasional short "errands", so distinct locations per user stay
//!    near the paper's 4.76 without fabricating cross-area transitions.

use crate::config::{ConfigError, GeneratorConfig};
use crate::gazetteer::{world_places, Place};
use crate::kernel::MobilityKernel;
use crate::sampling::{
    sample_exponential, sample_mean_one_lognormal, sample_tweet_count, scatter_point,
    uniform_in_bbox,
};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::collections::BTreeMap;
use tweetmob_data::{Timestamp, TweetDataset, UserId};
use tweetmob_geo::{Point, AUSTRALIA_BBOX};
use tweetmob_stats::rng::SplitMix64;

/// GPS jitter around a venue, km (mean of the exponential scatter).
const GPS_JITTER_KM: f64 = 0.02;
/// Probability a tweet is posted from a short "errand" away from the
/// sojourn venue (coffee run, shop) rather than the venue itself. Keeps
/// distinct locations/user near the paper's 4.76 without fabricating
/// cross-area transitions — the errand radius is well under any study
/// area's search radius.
const ERRAND_PROBABILITY: f64 = 0.2;
/// Mean distance of an errand from the venue, km.
const ERRAND_RADIUS_KM: f64 = 0.4;
/// Maximum frozen venues per (user, place).
const MAX_VENUES: usize = 3;
/// Buckets of the `synth/tweets_per_user` activity histogram — the
/// observable behind the paper's Fig. 2a heavy tail.
const TWEETS_PER_USER_BOUNDS: [u64; 9] = [1, 2, 5, 10, 20, 50, 100, 200, 500];
/// Venue selection CDF: 65 % primary, 25 % secondary, 10 % tertiary.
const VENUE_CDF: [f64; MAX_VENUES] = [0.65, 0.90, 1.0];

/// The synthetic tweet-stream generator.
///
/// ```
/// use tweetmob_synth::{GeneratorConfig, TweetGenerator};
///
/// let mut cfg = GeneratorConfig::small();
/// cfg.n_users = 200; // keep the doctest fast
/// let ds = TweetGenerator::new(cfg).generate();
/// assert_eq!(ds.n_users(), 200);
/// assert!(ds.n_tweets() >= 200);
/// ```
#[derive(Debug)]
pub struct TweetGenerator {
    config: GeneratorConfig,
    places: Vec<Place>,
    kernel: MobilityKernel,
    /// Cumulative home-assignment weights over places.
    home_cdf: Vec<f64>,
    /// The frozen per-place adoption bias, aligned with `places`.
    biases: Vec<f64>,
    /// Frozen per-place activity centroids: the official gazetteer
    /// centre displaced by a small, place-specific offset. Real suburbs'
    /// population centroids rarely coincide with their nominal centres;
    /// this offset is what makes tiny search radii (the paper's 0.5 km
    /// Fig. 3(b) variant) lose accuracy.
    activity_centers: Vec<Point>,
}

impl TweetGenerator {
    /// Builds a generator over the full Australian world gazetteer.
    ///
    /// # Panics
    ///
    /// On an invalid config; use [`TweetGenerator::try_new`] to handle the
    /// error instead.
    pub fn new(config: GeneratorConfig) -> Self {
        // lint: allow(no-panic) — documented panicking constructor; try_new is
        // the fallible variant
        Self::try_new(config).expect("invalid generator config")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] from [`GeneratorConfig::validate`].
    pub fn try_new(config: GeneratorConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self::with_places(config, world_places()))
    }

    /// Builds a generator over a custom world (used by tests and the
    /// radius-sensitivity ablations). The config must already be valid.
    pub fn with_places(config: GeneratorConfig, places: Vec<Place>) -> Self {
        let kernel = MobilityKernel::build(
            &places,
            config.gravity_gamma,
            config.gravity_dest_exponent,
            config.pair_noise_sigma,
            config.far_move_probability,
            config.seed ^ 0xA5A5_5A5A,
        );
        let biases: Vec<f64> = (0..places.len())
            .map(|i| frozen_place_bias(config.seed, i, config.bias_sigma))
            .collect();
        let mut home_cdf = Vec::with_capacity(places.len());
        let mut acc = 0.0;
        for (p, b) in places.iter().zip(&biases) {
            acc += p.area.population as f64 * b;
            home_cdf.push(acc);
        }
        let activity_centers: Vec<Point> = places
            .iter()
            .enumerate()
            .map(|(i, p)| frozen_activity_center(config.seed, i, p))
            .collect();
        Self {
            config,
            places,
            kernel,
            home_cdf,
            biases,
            activity_centers,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// The world places (index space shared with the kernel).
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// The frozen per-place Twitter-adoption bias factors.
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Generates the full dataset, parallelising across users on the
    /// shared [`tweetmob_par`] pool. Output is independent of thread
    /// count: every user stream is seeded by `(config.seed, user_id)`
    /// alone, and chunk outputs are concatenated in user-id order.
    ///
    /// The generator emits each user's stream in ascending user-id order
    /// with non-decreasing timestamps, so the output already satisfies
    /// the dataset's `(user, time)` sort invariant — the columns go
    /// straight into [`TweetDataset::from_sorted_columns`] with no
    /// row-struct materialisation and no re-sort. The result is
    /// identical to routing the same rows through
    /// [`TweetDataset::from_tweets`] (a stable sort of sorted input is
    /// the identity), which `tests::direct_to_columns_matches_row_path`
    /// holds bit-for-bit.
    pub fn generate(&self) -> TweetDataset {
        let _span = tweetmob_obs::span!("synth/generate");
        let n_users = self.config.n_users;
        let mut cols = tweetmob_par::par_map_reduce(
            "synth/generate",
            n_users as usize,
            64,
            |range| {
                let mut cols = UserColumns::default();
                for uid in range {
                    let before = cols.times.len();
                    self.user_stream(uid as u32, &mut cols);
                    let count = (cols.times.len() - before) as u32;
                    if count > 0 {
                        cols.unique_users.push(UserId(uid as u32));
                        cols.counts.push(count);
                    }
                }
                cols
            },
            |mut acc: UserColumns, chunk| {
                acc.extend(chunk);
                acc
            },
        );
        let mut user_starts = Vec::with_capacity(cols.counts.len() + 1);
        let mut offset = 0u32;
        user_starts.push(0);
        for &c in &cols.counts {
            offset += c;
            user_starts.push(offset);
        }
        let ds = TweetDataset::from_sorted_columns(
            std::mem::take(&mut cols.unique_users),
            user_starts,
            cols.times,
            cols.lats,
            cols.lons,
        )
        // lint: allow(no-panic) — the generator upholds the sort invariant by construction
        .expect("generator output satisfies the columnar sort invariant");
        tweetmob_obs::counter!("synth/users").add(u64::from(n_users));
        tweetmob_obs::counter!("synth/tweets_generated").add(ds.n_tweets() as u64);
        let per_user: Vec<u64> = ds.tweets_per_user().iter().map(|&c| u64::from(c)).collect();
        tweetmob_obs::global()
            .histogram("synth/tweets_per_user", &TWEETS_PER_USER_BOUNDS)
            .record_all(&per_user);
        ds
    }

    /// Generates one user's tweets into the column buffers.
    fn user_stream(&self, uid: u32, out: &mut UserColumns) {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(user_seed(cfg.seed, uid));
        let home = self.sample_home(&mut rng);
        let k = sample_tweet_count(&mut rng, cfg.activity_alpha, cfg.max_tweets_per_user);
        let times = self.sample_times(&mut rng, k);

        // BTreeMap (not HashMap): venue state must never depend on hash
        // iteration order — tests/determinism.rs holds the whole stream
        // bit-identical across runs and thread counts.
        let mut venues: BTreeMap<usize, Vec<Point>> = BTreeMap::new();
        let mut current = home;
        // Venues are sticky per sojourn: a user tweets from one venue
        // until they move places. Re-picking per tweet would fabricate
        // venue-to-venue transitions inside large places, which at the
        // metropolitan scale read as random suburb-to-suburb trips and
        // drown the genuine (gravity-law) mobility signal.
        let mut venue = self.pick_venue(&mut rng, &mut venues, current);
        for (i, &time) in times.iter().enumerate() {
            if i > 0 && rng.random::<f64>() < cfg.move_probability {
                let next = self.next_place(&mut rng, current, home);
                if next != current {
                    current = next;
                    venue = self.pick_venue(&mut rng, &mut venues, current);
                }
            }
            let location = if rng.random::<f64>() < cfg.outback_noise {
                uniform_in_bbox(&mut rng, &AUSTRALIA_BBOX)
            } else if rng.random::<f64>() < ERRAND_PROBABILITY {
                scatter_point(&mut rng, venue, ERRAND_RADIUS_KM)
            } else {
                scatter_point(&mut rng, venue, GPS_JITTER_KM)
            };
            out.times.push(time);
            out.lats.push(location.lat);
            out.lons.push(location.lon);
        }
    }

    /// Samples a home place index from the biased population CDF.
    fn sample_home<R: Rng>(&self, rng: &mut R) -> usize {
        // lint: allow(no-panic) — gazetteers are validated non-empty before use
        let total = *self.home_cdf.last().expect("world has places");
        let target = rng.random::<f64>() * total;
        self.home_cdf
            .partition_point(|&c| c <= target)
            .min(self.places.len() - 1)
    }

    /// Movement step: return home, or sample the kernel.
    fn next_place<R: Rng>(&self, rng: &mut R, current: usize, home: usize) -> usize {
        if current != home && rng.random::<f64>() < self.config.return_probability {
            return home;
        }
        self.kernel
            .sample_destination(rng, current)
            .unwrap_or(current)
    }

    /// Picks (lazily creating) one of the user's frozen venues in `place`.
    fn pick_venue<R: Rng>(
        &self,
        rng: &mut R,
        venues: &mut BTreeMap<usize, Vec<Point>>,
        place: usize,
    ) -> Point {
        let p = &self.places[place];
        let list = venues.entry(place).or_default();
        let u: f64 = rng.random();
        let want = VENUE_CDF.iter().position(|&c| u < c).unwrap_or(0);
        while list.len() <= want {
            list.push(scatter_point(
                rng,
                self.activity_centers[place],
                p.radius_km,
            ));
        }
        list[want]
    }

    /// Tweet timestamps for a user: an activity span covering an
    /// exponential fraction of the window, heavy-tailed gaps rescaled to
    /// fill it exactly.
    fn sample_times<R: Rng>(&self, rng: &mut R, k: u32) -> Vec<Timestamp> {
        let cfg = &self.config;
        let window = (cfg.window_end.seconds_since(cfg.window_start)) as f64;
        if k == 1 {
            let at = rng.random_range(0.0..window);
            return vec![cfg.window_start.plus_secs(at as i64)];
        }
        let span_frac = sample_exponential(rng, cfg.activity_span_fraction).min(0.95);
        let span = (window * span_frac).max((k as f64) * 1.0); // ≥ 1 s per gap
        let raw: Vec<f64> = (0..k - 1)
            .map(|_| sample_mean_one_lognormal(rng, cfg.waiting_sigma).max(1e-9))
            .collect();
        let sum: f64 = raw.iter().sum();
        let scale = span / sum;
        let start = rng.random_range(0.0..(window - span.min(window * 0.999)).max(1.0));
        let mut t = start;
        let mut times = Vec::with_capacity(k as usize);
        times.push(cfg.window_start.plus_secs(t as i64));
        for g in raw {
            t += g * scale;
            times.push(cfg.window_start.plus_secs(t.min(window) as i64));
        }
        times
    }
}

/// Struct-of-arrays accumulator for generated tweets: parallel value
/// columns plus the per-user run lengths, concatenated across chunks in
/// user-id order so the merged buffers already satisfy the dataset's
/// `(user, time)` sort invariant.
#[derive(Debug, Default)]
struct UserColumns {
    unique_users: Vec<UserId>,
    counts: Vec<u32>,
    times: Vec<Timestamp>,
    lats: Vec<f64>,
    lons: Vec<f64>,
}

impl UserColumns {
    /// Appends `chunk` after `self` (chunks arrive in user-id order).
    fn extend(&mut self, chunk: UserColumns) {
        self.unique_users.extend(chunk.unique_users);
        self.counts.extend(chunk.counts);
        self.times.extend(chunk.times);
        self.lats.extend(chunk.lats);
        self.lons.extend(chunk.lons);
    }
}

/// Per-user seed derivation: one SplitMix64 step over `(seed, uid)` so
/// consecutive user ids get decorrelated streams.
fn user_seed(seed: u64, uid: u32) -> u64 {
    SplitMix64::new(seed ^ ((uid as u64) << 1 | 1)).next_u64()
}

/// Frozen per-place activity centroid: the nominal centre displaced by a
/// deterministic offset of ~0.35× the settlement radius in a hashed
/// direction.
fn frozen_activity_center(seed: u64, place: usize, p: &Place) -> Point {
    let mut h = SplitMix64::new(seed.rotate_left(17) ^ (0xC0FFEE + place as u64));
    let bearing = h.next_f64() * 360.0;
    let dist = 0.35 * p.radius_km * (0.5 + h.next_f64());
    tweetmob_geo::destination(p.area.center, bearing, dist)
}

/// Frozen per-place adoption bias: mean-one log-normal keyed by
/// `(seed, place)`.
fn frozen_place_bias(seed: u64, place: usize, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let mut h = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(place as u64));
    let u1 = h.next_f64().max(1e-300);
    let u2 = h.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (-sigma * sigma / 2.0 + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tweetmob_data::{DatasetSummary, Tweet};
    use tweetmob_geo::haversine_km;

    fn small_dataset() -> TweetDataset {
        TweetGenerator::new(GeneratorConfig::small()).generate()
    }

    #[test]
    fn generates_requested_user_count() {
        let ds = small_dataset();
        assert_eq!(ds.n_users(), 2_000);
        assert!(ds.n_tweets() >= 2_000);
    }

    #[test]
    fn direct_to_columns_matches_row_path() {
        // The zero-sort columnar construction must be indistinguishable
        // from materialising rows and routing them through from_tweets —
        // a stable sort of already-sorted input is the identity.
        let g = TweetGenerator::new(GeneratorConfig::small());
        let columnar = g.generate();
        let mut cols = UserColumns::default();
        let mut rows = Vec::new();
        for uid in 0..g.config().n_users {
            let before = cols.times.len();
            g.user_stream(uid, &mut cols);
            for k in before..cols.times.len() {
                rows.push(Tweet::new(
                    UserId(uid),
                    cols.times[k],
                    Point::new_unchecked(cols.lats[k], cols.lons[k]),
                ));
            }
        }
        let row_path = TweetDataset::from_tweets(rows);
        assert_eq!(columnar, row_path);
    }

    #[test]
    fn generation_is_thread_invariant() {
        let g = TweetGenerator::new(GeneratorConfig::small());
        let one = tweetmob_par::with_threads(1, || g.generate());
        let eight = tweetmob_par::with_threads(8, || g.generate());
        assert_eq!(one, eight);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = small_dataset();
        let b = small_dataset();
        assert_eq!(a.n_tweets(), b.n_tweets());
        assert!(a.iter_tweets().zip(b.iter_tweets()).all(|(x, y)| x == y));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TweetGenerator::new(GeneratorConfig::small().with_seed(1)).generate();
        let b = TweetGenerator::new(GeneratorConfig::small().with_seed(2)).generate();
        assert_ne!(a.n_tweets(), b.n_tweets());
    }

    #[test]
    fn all_tweets_inside_australia_and_window() {
        let ds = small_dataset();
        let cfg = GeneratorConfig::small();
        for t in ds.iter_tweets() {
            assert!(
                AUSTRALIA_BBOX.contains(t.location),
                "tweet at {}",
                t.location
            );
            assert!(
                t.time.within(cfg.window_start, cfg.window_end),
                "tweet at {}",
                t.time
            );
        }
    }

    #[test]
    fn table_one_calibration_bands() {
        // The paper's Table I: 13.3 tweets/user, 35.5 h waiting, 4.76
        // locations/user. Bands are generous — shape, not digits.
        let ds = TweetGenerator::new(GeneratorConfig::default()).generate();
        let s = DatasetSummary::of(&ds);
        assert!(
            (8.0..20.0).contains(&s.avg_tweets_per_user),
            "tweets/user {}",
            s.avg_tweets_per_user
        );
        assert!(
            (15.0..70.0).contains(&s.avg_waiting_time_hours),
            "waiting {} h",
            s.avg_waiting_time_hours
        );
        assert!(
            (2.0..9.0).contains(&s.avg_locations_per_user),
            "locations/user {}",
            s.avg_locations_per_user
        );
        // Heavy-tail sanity: some enthusiasts exist.
        assert!(s.activity.over_100 > 0);
    }

    #[test]
    fn user_timestamps_are_nondecreasing() {
        let ds = small_dataset();
        for view in ds.iter_users() {
            for w in view.times.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn population_concentrates_in_big_cities() {
        let ds = TweetGenerator::new(GeneratorConfig::default()).generate();
        let sydney = Point::new_unchecked(-33.8688, 151.2093);
        let alice = Point::new_unchecked(-23.6980, 133.8807);
        let near = |c: Point, r: f64| {
            ds.iter_points()
                .filter(|&p| haversine_km(c, p) < r)
                .count()
        };
        let sydney_tweets = near(sydney, 50.0);
        let alice_tweets = near(alice, 50.0);
        assert!(
            sydney_tweets > 50 * alice_tweets.max(1),
            "sydney {sydney_tweets} vs alice springs {alice_tweets}"
        );
    }

    #[test]
    fn movement_produces_intercity_transitions() {
        let ds = TweetGenerator::new(GeneratorConfig::default()).generate();
        // Count consecutive same-user pairs > 300 km apart.
        let mut far_pairs = 0usize;
        for view in ds.iter_users() {
            for k in 1..view.len() {
                if haversine_km(view.point(k - 1), view.point(k)) > 300.0 {
                    far_pairs += 1;
                }
            }
        }
        assert!(far_pairs > 100, "only {far_pairs} long-range transitions");
    }

    #[test]
    fn try_new_rejects_invalid_config() {
        let bad = GeneratorConfig {
            n_users: 0,
            ..GeneratorConfig::small()
        };
        assert!(TweetGenerator::try_new(bad).is_err());
    }

    #[test]
    fn biases_are_frozen_and_positive() {
        let g1 = TweetGenerator::new(GeneratorConfig::small());
        let g2 = TweetGenerator::new(GeneratorConfig::small());
        assert_eq!(g1.biases(), g2.biases());
        assert!(g1.biases().iter().all(|&b| b > 0.0));
        let g3 = TweetGenerator::new(GeneratorConfig::small().with_seed(9));
        assert_ne!(g1.biases(), g3.biases());
    }

    #[test]
    fn zero_bias_sigma_means_unit_bias() {
        let cfg = GeneratorConfig {
            bias_sigma: 0.0,
            ..GeneratorConfig::small()
        };
        let g = TweetGenerator::new(cfg);
        assert!(g.biases().iter().all(|&b| b == 1.0));
    }

    #[test]
    fn single_user_world_stays_put() {
        let places = world_places();
        let one = vec![places[0]];
        let cfg = GeneratorConfig {
            n_users: 5,
            ..GeneratorConfig::small()
        };
        let g = TweetGenerator::with_places(cfg, one.clone());
        let ds = g.generate();
        // Every tweet scatters around the single place.
        for p in ds.iter_points() {
            let d = haversine_km(one[0].area.center, p);
            assert!(
                d < one[0].radius_km * 4.0 + GPS_JITTER_KM * 4.0 + 1e-6,
                "d = {d}"
            );
        }
    }
}
