//! The ground-truth mobility kernel trips are generated from.
//!
//! Destination choice follows a two-regime gravity law over the world's
//! places, reflecting the multi-scale structure of real travel:
//!
//! * **local** moves (destination < `FAR_THRESHOLD_KM` from the origin) —
//!   commutes and errands;
//! * **far** moves (≥ threshold) — inter-city trips, sampled with
//!   probability [`MobilityKernel::far_probability`] per move.
//!
//! Within each regime the destination weight is
//! `pop_b^dest_exp / d_ab^γ · ε_ab`, where `ε_ab` is a **frozen**
//! log-normal pair noise: fixed per (origin, destination) for the whole
//! run, so it does not average out with more trips. That frozen noise is
//! what keeps the fitted models' Table II scores below 1.0, like the
//! paper's — real flows deviate persistently from any smooth law.
//!
//! Radiation is *not* used anywhere in generation; its Table II misfit
//! arises from the real embedded geography (coastal, discontinuous
//! population), which is exactly the paper's explanation for why
//! Radiation underperforms in Australia.

use crate::gazetteer::Place;
use rand::{Rng, RngExt};
use tweetmob_geo::TrigPoint;
use tweetmob_stats::rng::SplitMix64;

/// Moves at or beyond this distance use the far (inter-city) regime.
pub const FAR_THRESHOLD_KM: f64 = 100.0;

/// Precomputed destination-choice tables over the world's places.
#[derive(Debug, Clone)]
pub struct MobilityKernel {
    n: usize,
    /// Pairwise distances, row-major (d\[i·n + j\]).
    distances: Vec<f64>,
    /// Per-origin cumulative weights over *local* destinations.
    local_cdf: Vec<Vec<f64>>,
    /// Per-origin cumulative weights over *far* destinations.
    far_cdf: Vec<Vec<f64>>,
    /// Probability a move uses the far regime (when the origin has any
    /// far destination with positive weight).
    far_probability: f64,
}

impl MobilityKernel {
    /// Builds the kernel.
    ///
    /// * `gamma` — distance-decay exponent of the ground-truth law;
    /// * `dest_exp` — destination-population exponent;
    /// * `pair_noise_sigma` — σ of the frozen log-normal pair noise;
    /// * `far_probability` — share of moves routed to the far regime;
    /// * `seed` — seeds the frozen pair noise (not the per-trip RNG).
    pub fn build(
        places: &[Place],
        gamma: f64,
        dest_exp: f64,
        pair_noise_sigma: f64,
        far_probability: f64,
        seed: u64,
    ) -> Self {
        let n = places.len();
        // Hoist the per-place trigonometry once; the pair loop then runs
        // the cheap TrigPoint kernel (bit-identical to haversine_km).
        let trig: Vec<TrigPoint> = places
            .iter()
            .map(|p| TrigPoint::new(p.area.center))
            .collect();
        let mut distances = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = trig[i].distance_km(&trig[j]);
                distances[i * n + j] = d;
                distances[j * n + i] = d;
            }
        }
        let mut local_cdf = Vec::with_capacity(n);
        let mut far_cdf = Vec::with_capacity(n);
        for i in 0..n {
            let mut local = Vec::with_capacity(n);
            let mut far = Vec::with_capacity(n);
            let mut local_acc = 0.0;
            let mut far_acc = 0.0;
            for j in 0..n {
                let mut w = 0.0;
                if i != j {
                    let d = distances[i * n + j].max(1.0);
                    let noise = frozen_pair_noise(seed, i, j, pair_noise_sigma);
                    w = (places[j].area.population as f64).powf(dest_exp) / d.powf(gamma) * noise;
                }
                if i != j && distances[i * n + j] < FAR_THRESHOLD_KM {
                    local_acc += w;
                } else if i != j {
                    far_acc += w;
                }
                local.push(local_acc);
                far.push(far_acc);
            }
            local_cdf.push(local);
            far_cdf.push(far);
        }
        Self {
            n,
            distances,
            local_cdf,
            far_cdf,
            far_probability,
        }
    }

    /// Number of places the kernel covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the kernel is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Probability a move uses the far regime.
    #[inline]
    pub fn far_probability(&self) -> f64 {
        self.far_probability
    }

    /// Great-circle distance between places `i` and `j`, km.
    ///
    /// # Panics
    ///
    /// If either index is out of range.
    #[inline]
    pub fn distance_km(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "place index out of range");
        self.distances[i * self.n + j]
    }

    /// Samples a destination for a move from `origin`. Chooses the far
    /// regime with probability `far_probability` (falling back to local
    /// when the chosen regime has zero total weight, and vice versa).
    /// Returns `None` only when the origin has no positive-weight
    /// destination at all (single-place world).
    ///
    /// # Panics
    ///
    /// If `origin` is out of range.
    pub fn sample_destination<R: Rng>(&self, rng: &mut R, origin: usize) -> Option<usize> {
        assert!(origin < self.n, "origin out of range");
        let want_far = rng.random::<f64>() < self.far_probability;
        let (primary, fallback) = if want_far {
            (&self.far_cdf[origin], &self.local_cdf[origin])
        } else {
            (&self.local_cdf[origin], &self.far_cdf[origin])
        };
        self.sample_from_cdf(rng, primary)
            .or_else(|| self.sample_from_cdf(rng, fallback))
    }

    fn sample_from_cdf<R: Rng>(&self, rng: &mut R, cdf: &[f64]) -> Option<usize> {
        let total = *cdf.last()?;
        if total <= 0.0 {
            return None;
        }
        let target = rng.random::<f64>() * total;
        // First index with cdf > target.
        let idx = cdf.partition_point(|&c| c <= target);
        Some(idx.min(self.n - 1))
    }

    /// The ground-truth (pre-normalisation) weight of a directed pair, or
    /// 0.0 for self-pairs. Exposed for tests and calibration.
    pub fn ground_truth_weight(&self, origin: usize, dest: usize) -> f64 {
        if origin == dest {
            return 0.0;
        }
        let row_local = &self.local_cdf[origin];
        let row_far = &self.far_cdf[origin];
        let before_local = if dest == 0 { 0.0 } else { row_local[dest - 1] };
        let before_far = if dest == 0 { 0.0 } else { row_far[dest - 1] };
        (row_local[dest] - before_local) + (row_far[dest] - before_far)
    }
}

/// Frozen per-pair log-normal factor with mean 1, derived from a hash of
/// `(seed, origin, dest)` so it is stable across the whole run and across
/// threads. The pair noise is intentionally asymmetric (`ε_ab ≠ ε_ba`):
/// real OD matrices are not symmetric either.
fn frozen_pair_noise(seed: u64, i: usize, j: usize, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let mut h = SplitMix64::new(seed ^ ((i as u64) << 32) ^ j as u64);
    // Box–Muller on two SplitMix64 uniforms.
    let u1 = h.next_f64().max(1e-300);
    let u2 = h.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (-sigma * sigma / 2.0 + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::world_places;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn kernel() -> MobilityKernel {
        MobilityKernel::build(&world_places(), 2.0, 1.0, 0.4, 0.25, 99)
    }

    #[test]
    fn distances_symmetric_zero_diagonal() {
        let k = kernel();
        for i in (0..k.len()).step_by(7) {
            assert_eq!(k.distance_km(i, i), 0.0);
            for j in (0..k.len()).step_by(11) {
                assert_eq!(k.distance_km(i, j), k.distance_km(j, i));
            }
        }
    }

    #[test]
    fn kernel_distances_match_haversine_bit_for_bit() {
        let places = world_places();
        let k = kernel();
        for i in (0..k.len()).step_by(13) {
            for j in (0..k.len()).step_by(17) {
                let direct =
                    tweetmob_geo::haversine_km(places[i].area.center, places[j].area.center);
                assert_eq!(k.distance_km(i, j).to_bits(), direct.to_bits());
            }
        }
    }

    #[test]
    fn never_samples_the_origin() {
        let k = kernel();
        let mut rng = StdRng::seed_from_u64(5);
        for origin in [0, 10, 40] {
            for _ in 0..500 {
                let d = k.sample_destination(&mut rng, origin).unwrap();
                assert_ne!(d, origin);
            }
        }
    }

    #[test]
    fn local_moves_dominate_and_favor_close_places() {
        let places = world_places();
        let k = kernel();
        // Origin: Parramatta (a Sydney suburb).
        let origin = places
            .iter()
            .position(|p| p.area.name == "Parramatta")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let n = 5_000;
        let mut local = 0;
        for _ in 0..n {
            let d = k.sample_destination(&mut rng, origin).unwrap();
            if k.distance_km(origin, d) < FAR_THRESHOLD_KM {
                local += 1;
            }
        }
        let local_frac = local as f64 / n as f64;
        // far_probability = 0.25 → about 75 % local.
        assert!(
            (0.65..0.85).contains(&local_frac),
            "local fraction {local_frac}"
        );
    }

    #[test]
    fn far_moves_follow_gravity_ordering() {
        // From Sydney, Melbourne (big, 713 km) must receive far more far-
        // regime trips than Perth (smaller, 3,290 km): weight ratio
        // (4.2M/713²)/(1.9M/3290²) ≈ 47 before pair noise.
        let places = world_places();
        let k = kernel();
        let origin = places
            .iter()
            .position(|p| p.area.name == "Marrickville") // inner Sydney
            .unwrap();
        let melbourne = places.iter().position(|p| p.area.name == "Melbourne").unwrap();
        let perth = places.iter().position(|p| p.area.name == "Perth").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let (mut mel, mut per) = (0u32, 0u32);
        for _ in 0..40_000 {
            if let Some(d) = k.sample_destination(&mut rng, origin) {
                if d == melbourne {
                    mel += 1;
                } else if d == perth {
                    per += 1;
                }
            }
        }
        assert!(mel > per * 3, "melbourne {mel} vs perth {per}");
    }

    #[test]
    fn ground_truth_weight_matches_cdf_decomposition() {
        let k = kernel();
        // Sum of ground-truth weights over destinations equals the sum of
        // both regime totals.
        for origin in [0, 25, 60] {
            let total: f64 = (0..k.len()).map(|j| k.ground_truth_weight(origin, j)).sum();
            let expect =
                k.local_cdf[origin].last().unwrap() + k.far_cdf[origin].last().unwrap();
            assert!((total - expect).abs() < 1e-9 * expect.max(1.0));
            assert_eq!(k.ground_truth_weight(origin, origin), 0.0);
        }
    }

    #[test]
    fn pair_noise_is_frozen_and_mean_one_ish() {
        let a = frozen_pair_noise(1, 3, 9, 0.5);
        let b = frozen_pair_noise(1, 3, 9, 0.5);
        assert_eq!(a, b);
        assert_ne!(frozen_pair_noise(1, 3, 9, 0.5), frozen_pair_noise(1, 9, 3, 0.5));
        assert_ne!(frozen_pair_noise(2, 3, 9, 0.5), a);
        assert_eq!(frozen_pair_noise(1, 3, 9, 0.0), 1.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|i| frozen_pair_noise(7, i, i + 1, 0.5))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn deterministic_sampling_per_seed() {
        let k = kernel();
        let seq = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| k.sample_destination(&mut rng, 0).unwrap()).collect()
        };
        assert_eq!(seq(11), seq(11));
        assert_ne!(seq(11), seq(12));
    }

    #[test]
    fn two_place_world_works() {
        let places = world_places();
        let two = vec![places[0], places[30]];
        let k = MobilityKernel::build(&two, 2.0, 1.0, 0.0, 0.5, 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(k.sample_destination(&mut rng, 0), Some(1));
        assert_eq!(k.sample_destination(&mut rng, 1), Some(0));
    }

    #[test]
    fn single_place_world_returns_none() {
        let places = world_places();
        let one = vec![places[0]];
        let k = MobilityKernel::build(&one, 2.0, 1.0, 0.0, 0.5, 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(k.sample_destination(&mut rng, 0), None);
    }
}
