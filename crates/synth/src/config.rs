//! Generator configuration and calibrated presets.

use serde::{Deserialize, Serialize};
use std::fmt;
use tweetmob_data::Timestamp;

/// Error type for invalid generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid generator config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Parameters of the synthetic tweet-stream generator.
///
/// Defaults are calibrated against the paper's Table I: mean tweets/user ≈
/// 13.3, mean waiting time ≈ 35.5 h, mean distinct locations/user ≈ 4.76,
/// over a Sept 2013 – Apr 2014 window. Changing a knob changes one
/// behavioural axis:
///
/// | knob | controls |
/// |---|---|
/// | `activity_alpha` | tail of the tweets-per-user power law (Fig. 2a) |
/// | `activity_span_fraction` | fraction of the window a typical user is active for — drives the mean waiting time (Table I) |
/// | `waiting_sigma` | burstiness of inter-tweet gaps (Fig. 2b spread) |
/// | `move_probability` | how often a consecutive tweet pair is a trip (Fig. 4 sample size) |
/// | `gravity_gamma` | distance decay of the ground-truth trip kernel |
/// | `pair_noise_sigma` | irreducible per-pair flow noise → imperfect model fits (Table II < 1.0) |
/// | `bias_sigma` | per-place Twitter-adoption noise → Fig. 3 scatter |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of synthetic users (paper: 473,956).
    pub n_users: u32,
    /// Master RNG seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Power-law exponent of the tweets-per-user distribution
    /// (continuous Pareto floor'd to integers, capped). 1.95 with the
    /// 20,000 cap gives mean ≈ 13.3 — the cap tames the infinite-mean
    /// regime exactly the way a finite observation window does.
    pub activity_alpha: f64,
    /// Hard cap on tweets per user (keeps a single user from dominating
    /// a small run; the paper's max observed is ~10⁴).
    pub max_tweets_per_user: u32,
    /// Mean fraction of the collection window a user's activity spans
    /// (exponentially distributed, clipped to 1). 0.15 reproduces the
    /// paper's 35.5 h mean waiting time once the ~half of users with a
    /// single tweet (who contribute no gaps) are accounted for.
    pub activity_span_fraction: f64,
    /// Log-normal σ of the mean-one gap mixture (≈ 2.0 spans 4+ decades
    /// per user; pooled across users the span exceeds 8 decades).
    pub waiting_sigma: f64,
    /// Probability that a tweet is preceded by a move to another place.
    pub move_probability: f64,
    /// Probability that a move from *away* returns home rather than
    /// sampling a fresh destination.
    pub return_probability: f64,
    /// Probability that a move uses the far (≥ 100 km, inter-city)
    /// kernel regime rather than the local one. Keeps national-scale OD
    /// matrices populated despite local moves dominating raw counts.
    pub far_move_probability: f64,
    /// Ground-truth gravity exponent γ of the trip kernel.
    pub gravity_gamma: f64,
    /// Ground-truth destination-population exponent of the trip kernel.
    pub gravity_dest_exponent: f64,
    /// Log-normal σ of the frozen per-(origin, destination) flow noise.
    pub pair_noise_sigma: f64,
    /// Log-normal σ of the frozen per-place Twitter-adoption bias.
    pub bias_sigma: f64,
    /// Fraction of tweets relocated uniformly inside the Australia bbox
    /// (GPS glitches, travellers in transit) — fills in the Fig. 1 map.
    pub outback_noise: f64,
    /// Collection window start.
    pub window_start: Timestamp,
    /// Collection window end.
    pub window_end: Timestamp,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            n_users: 20_000,
            seed: 0x7EE7_30B5,
            activity_alpha: 1.95,
            max_tweets_per_user: 20_000,
            activity_span_fraction: 0.15,
            waiting_sigma: 2.0,
            move_probability: 0.18,
            return_probability: 0.6,
            far_move_probability: 0.25,
            gravity_gamma: 2.0,
            gravity_dest_exponent: 1.0,
            pair_noise_sigma: 0.55,
            bias_sigma: 0.45,
            outback_noise: 0.004,
            window_start: Timestamp::COLLECTION_START,
            window_end: Timestamp::COLLECTION_END,
        }
    }
}

impl GeneratorConfig {
    /// A fast preset (~2,000 users) for unit tests and doc examples.
    pub fn small() -> Self {
        Self {
            n_users: 2_000,
            ..Self::default()
        }
    }

    /// The default experiment scale (~20,000 users): every paper
    /// experiment reproduces its qualitative shape at this size in
    /// seconds.
    pub fn medium() -> Self {
        Self::default()
    }

    /// A larger run (~80,000 users) for tighter statistics.
    pub fn large() -> Self {
        Self {
            n_users: 80_000,
            ..Self::default()
        }
    }

    /// The paper's full scale: 473,956 users (minutes of generation,
    /// gigabytes of tweets).
    pub fn paper_scale() -> Self {
        Self {
            n_users: 473_956,
            ..Self::default()
        }
    }

    /// Returns the same config with a different seed (for replicates).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_users == 0 {
            return Err(ConfigError("n_users must be > 0".into()));
        }
        if !(self.activity_alpha > 1.0) {
            return Err(ConfigError(format!(
                "activity_alpha must be > 1 (got {})",
                self.activity_alpha
            )));
        }
        if self.max_tweets_per_user < 1 {
            return Err(ConfigError("max_tweets_per_user must be ≥ 1".into()));
        }
        if !(self.activity_span_fraction > 0.0 && self.activity_span_fraction <= 1.0) {
            return Err(ConfigError(format!(
                "activity_span_fraction must be in (0, 1] (got {})",
                self.activity_span_fraction
            )));
        }
        if !(self.waiting_sigma > 0.0) {
            return Err(ConfigError("waiting_sigma must be > 0".into()));
        }
        for (name, p) in [
            ("move_probability", self.move_probability),
            ("return_probability", self.return_probability),
            ("far_move_probability", self.far_move_probability),
            ("outback_noise", self.outback_noise),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError(format!("{name} must be in [0, 1] (got {p})")));
            }
        }
        if !(self.gravity_gamma > 0.0) {
            return Err(ConfigError("gravity_gamma must be > 0".into()));
        }
        if !(self.gravity_dest_exponent > 0.0) {
            return Err(ConfigError("gravity_dest_exponent must be > 0".into()));
        }
        if self.pair_noise_sigma < 0.0 || self.bias_sigma < 0.0 {
            return Err(ConfigError("noise sigmas must be ≥ 0".into()));
        }
        if self.window_end <= self.window_start {
            return Err(ConfigError("window_end must be after window_start".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            GeneratorConfig::small(),
            GeneratorConfig::medium(),
            GeneratorConfig::large(),
            GeneratorConfig::paper_scale(),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn paper_scale_matches_table_one_user_count() {
        assert_eq!(GeneratorConfig::paper_scale().n_users, 473_956);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = GeneratorConfig::small();
        let b = a.clone().with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.n_users, b.n_users);
    }

    #[test]
    fn validation_catches_each_bad_knob() {
        let ok = GeneratorConfig::small();
        let cases: Vec<(&str, GeneratorConfig)> = vec![
            ("n_users", GeneratorConfig { n_users: 0, ..ok.clone() }),
            ("alpha", GeneratorConfig { activity_alpha: 1.0, ..ok.clone() }),
            ("max_tweets", GeneratorConfig { max_tweets_per_user: 0, ..ok.clone() }),
            ("span", GeneratorConfig { activity_span_fraction: 0.0, ..ok.clone() }),
            ("span_hi", GeneratorConfig { activity_span_fraction: 1.5, ..ok.clone() }),
            ("sigma", GeneratorConfig { waiting_sigma: 0.0, ..ok.clone() }),
            ("move_p", GeneratorConfig { move_probability: 1.5, ..ok.clone() }),
            ("return_p", GeneratorConfig { return_probability: -0.1, ..ok.clone() }),
            ("gamma", GeneratorConfig { gravity_gamma: 0.0, ..ok.clone() }),
            ("dest_exp", GeneratorConfig { gravity_dest_exponent: 0.0, ..ok.clone() }),
            ("pair_noise", GeneratorConfig { pair_noise_sigma: -1.0, ..ok.clone() }),
            (
                "window",
                GeneratorConfig {
                    window_end: ok.window_start,
                    ..ok.clone()
                },
            ),
        ];
        for (label, cfg) in cases {
            assert!(cfg.validate().is_err(), "{label} should fail validation");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = GeneratorConfig::large().with_seed(7);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GeneratorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
