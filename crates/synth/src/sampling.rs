//! Primitive samplers used by the generator.
//!
//! `rand` 0.10 ships uniform generation only (distribution types live in
//! the `rand_distr` crate, which is outside the approved dependency set),
//! so the handful of distributions the generator needs — normal
//! (Box–Muller), log-normal, exponential, truncated Pareto and a
//! geographic scatter kernel — are implemented here against the plain
//! [`rand::Rng`] trait.

use rand::{Rng, RngExt};
use tweetmob_geo::{destination, Point};

/// Standard normal variate via Box–Muller (one value per call; the twin
/// is discarded for simplicity — generation is not the hot path).
pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by nudging u1 away from zero.
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal variate with the given log-space mean and deviation.
pub fn sample_lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * sample_normal(rng)).exp()
}

/// A log-normal variate whose *expected value is one*:
/// `LogNormal(−σ²/2, σ)`. The generator uses these as multiplicative
/// heavy-tailed factors that must not shift means.
pub fn sample_mean_one_lognormal<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    sample_lognormal(rng, -sigma * sigma / 2.0, sigma)
}

/// Exponential variate with the given mean.
pub fn sample_exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-300);
    -mean * u.ln()
}

/// Continuous Pareto variate with lower bound `xmin` and exponent
/// `alpha > 1` (density ∝ x^(−alpha) for x ≥ xmin).
pub fn sample_pareto<R: Rng>(rng: &mut R, xmin: f64, alpha: f64) -> f64 {
    let u: f64 = rng.random();
    xmin * (1.0 - u).max(1e-300).powf(-1.0 / (alpha - 1.0))
}

/// Tweets-per-user sample: `floor(Pareto(1, alpha))` clamped to
/// `[1, cap]`. With `alpha = 1.95` and `cap = 20_000` the mean lands
/// near the paper's 13.3 (the cap bounds the otherwise-divergent mean).
pub fn sample_tweet_count<R: Rng>(rng: &mut R, alpha: f64, cap: u32) -> u32 {
    let x = sample_pareto(rng, 1.0, alpha);
    (x as u64).clamp(1, cap as u64) as u32
}

/// Scatters a point around `center`: exponentially distributed distance
/// with mean `radius_km` (capped at 4× to keep settlements compact) and a
/// uniform bearing.
pub fn scatter_point<R: Rng>(rng: &mut R, center: Point, radius_km: f64) -> Point {
    let dist = sample_exponential(rng, radius_km).min(radius_km * 4.0);
    let bearing = rng.random_range(0.0..360.0);
    destination(center, bearing, dist)
}

/// Uniform point inside a bounding box (area-uniform in coordinate space,
/// which is fine for noise injection).
pub fn uniform_in_bbox<R: Rng>(rng: &mut R, bbox: &tweetmob_geo::BoundingBox) -> Point {
    Point::new_unchecked(
        rng.random_range(bbox.min_lat..=bbox.max_lat),
        rng.random_range(bbox.min_lon..=bbox.max_lon),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tweetmob_geo::{haversine_km, AUSTRALIA_BBOX};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn mean_one_lognormal_really_has_mean_one() {
        let mut r = rng(2);
        let n = 300_000;
        for sigma in [0.3, 1.0, 1.5] {
            let mean: f64 = (0..n)
                .map(|_| sample_mean_one_lognormal(&mut r, sigma))
                .sum::<f64>()
                / n as f64;
            assert!((mean - 1.0).abs() < 0.1, "sigma {sigma}: mean {mean}");
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = rng(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| sample_exponential(&mut r, 7.0)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn pareto_respects_xmin_and_tail() {
        let mut r = rng(4);
        let xs: Vec<f64> = (0..50_000).map(|_| sample_pareto(&mut r, 2.0, 2.5)).collect();
        assert!(xs.iter().all(|&x| x >= 2.0));
        // Analytic: P(X > 2·2^(1/1.5)) = 0.5 → median = 2·2^(2/3).
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let theory = 2.0 * 2.0f64.powf(1.0 / 1.5);
        assert!((median - theory).abs() / theory < 0.03, "median {median}");
    }

    #[test]
    fn tweet_count_calibrated_to_paper_mean() {
        // Table I: 13.3 tweets per user on average. The floor'd Pareto
        // at alpha = 1.95 relies on the 20,000 cap to bound the mean;
        // check the calibrated band.
        let mut r = rng(5);
        let n = 400_000;
        let counts: Vec<u32> = (0..n)
            .map(|_| sample_tweet_count(&mut r, 1.95, 20_000))
            .collect();
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / n as f64;
        assert!((8.0..20.0).contains(&mean), "mean tweets/user {mean}");
        assert!(counts.iter().all(|&c| (1..=20_000).contains(&c)));
        // Heavy tail: some user should exceed 1,000 tweets in 400k draws.
        assert!(counts.iter().any(|&c| c > 1_000));
    }

    #[test]
    fn tweet_count_respects_cap() {
        let mut r = rng(6);
        for _ in 0..20_000 {
            assert!(sample_tweet_count(&mut r, 1.2, 50) <= 50);
        }
    }

    #[test]
    fn scatter_distance_distribution() {
        let mut r = rng(7);
        let c = Point::new_unchecked(-33.8688, 151.2093);
        let n = 20_000;
        let dists: Vec<f64> = (0..n)
            .map(|_| haversine_km(c, scatter_point(&mut r, c, 5.0)))
            .collect();
        let mean = dists.iter().sum::<f64>() / n as f64;
        // Exponential(5) truncated at 20 has mean slightly below 5.
        assert!((4.0..5.5).contains(&mean), "mean scatter {mean}");
        assert!(dists.iter().all(|&d| d <= 20.0 + 1e-9));
    }

    #[test]
    fn uniform_bbox_points_inside() {
        let mut r = rng(8);
        for _ in 0..2_000 {
            let p = uniform_in_bbox(&mut r, &AUSTRALIA_BBOX);
            assert!(AUSTRALIA_BBOX.contains(p));
        }
    }

    #[test]
    fn samplers_deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut r = rng(42);
            (0..10).map(|_| sample_pareto(&mut r, 1.0, 2.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(42);
            (0..10).map(|_| sample_pareto(&mut r, 1.0, 2.0)).collect()
        };
        assert_eq!(a, b);
    }
}
