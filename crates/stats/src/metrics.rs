//! Estimation-quality metrics.
//!
//! Table II of the paper scores each model with the Pearson correlation
//! (see [`crate::correlation`]) and **HitRate@50%** — "percentage of
//! estimates which have smaller than 50% relative errors". This module
//! implements HitRate@q plus the extra metrics the paper's future work
//! calls for: RMSE, MAE, MAPE (all optionally in log space) and the
//! Sørensen similarity index (common-part-of-commuters) that the mobility
//! literature uses to compare flow matrices.

use crate::check::{debug_assert_nonneg, debug_assert_prob};
use crate::{check_paired, Result, StatsError};

/// Fraction of estimates whose relative error `|est − obs| / obs` is
/// strictly below `q`. Pairs with `obs <= 0` are skipped (relative error
/// undefined); returns the fraction over the remaining pairs.
///
/// `hit_rate(est, obs, 0.5)` is the paper's HitRate@50%.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] — slices differ in length.
/// * [`StatsError::TooFewSamples`] — no pair had a positive observation.
pub fn hit_rate(estimated: &[f64], observed: &[f64], q: f64) -> Result<f64> {
    check_paired(estimated, observed)?;
    let mut used = 0usize;
    let mut hits = 0usize;
    for (&e, &o) in estimated.iter().zip(observed) {
        if o > 0.0 && o.is_finite() && e.is_finite() {
            used += 1;
            if ((e - o) / o).abs() < q {
                hits += 1;
            }
        }
    }
    if used == 0 {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    Ok(debug_assert_prob(hits as f64 / used as f64, "hit rate"))
}

/// Root-mean-square error.
///
/// # Errors
///
/// Mismatched lengths or empty input.
pub fn rmse(estimated: &[f64], observed: &[f64]) -> Result<f64> {
    check_paired(estimated, observed)?;
    if estimated.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let ss: f64 = estimated
        .iter()
        .zip(observed)
        .map(|(&e, &o)| (e - o) * (e - o))
        .sum();
    Ok((ss / estimated.len() as f64).sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// Mismatched lengths or empty input.
pub fn mae(estimated: &[f64], observed: &[f64]) -> Result<f64> {
    check_paired(estimated, observed)?;
    if estimated.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let s: f64 = estimated
        .iter()
        .zip(observed)
        .map(|(&e, &o)| (e - o).abs())
        .sum();
    Ok(s / estimated.len() as f64)
}

/// Mean absolute percentage error over pairs with positive observations.
///
/// # Errors
///
/// Mismatched lengths, or no usable pair.
pub fn mape(estimated: &[f64], observed: &[f64]) -> Result<f64> {
    check_paired(estimated, observed)?;
    let mut used = 0usize;
    let mut acc = 0.0;
    for (&e, &o) in estimated.iter().zip(observed) {
        if o > 0.0 && o.is_finite() && e.is_finite() {
            used += 1;
            acc += ((e - o) / o).abs();
        }
    }
    if used == 0 {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    Ok(debug_assert_nonneg(acc / used as f64, "MAPE"))
}

/// RMSE of `log10` values over pairs where both sides are positive —
/// "error in decades", matching the paper's visual reading of Fig. 4
/// ("estimation error is roughly bounded by one decade").
///
/// # Errors
///
/// Mismatched lengths, or no pair with both values positive.
pub fn log_rmse(estimated: &[f64], observed: &[f64]) -> Result<f64> {
    check_paired(estimated, observed)?;
    let mut used = 0usize;
    let mut ss = 0.0;
    for (&e, &o) in estimated.iter().zip(observed) {
        if e > 0.0 && o > 0.0 && e.is_finite() && o.is_finite() {
            used += 1;
            let d = e.log10() - o.log10();
            ss += d * d;
        }
    }
    if used == 0 {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    Ok(debug_assert_nonneg((ss / used as f64).sqrt(), "log-RMSE"))
}

/// Sørensen similarity index between two non-negative flow vectors
/// ("common part of commuters"): `2·Σ min(eᵢ, oᵢ) / (Σeᵢ + Σoᵢ)` ∈ [0, 1].
///
/// # Errors
///
/// Mismatched lengths; [`StatsError::Degenerate`] when both vectors sum
/// to zero; [`StatsError::NonPositiveValue`] on any negative entry.
pub fn sorensen_index(estimated: &[f64], observed: &[f64]) -> Result<f64> {
    check_paired(estimated, observed)?;
    let mut min_sum = 0.0;
    let mut total = 0.0;
    for (&e, &o) in estimated.iter().zip(observed) {
        if e < 0.0 || !e.is_finite() {
            return Err(StatsError::NonPositiveValue(e));
        }
        if o < 0.0 || !o.is_finite() {
            return Err(StatsError::NonPositiveValue(o));
        }
        min_sum += e.min(o);
        total += e + o;
    }
    if total == 0.0 {
        return Err(StatsError::Degenerate("both flow vectors are zero"));
    }
    Ok(debug_assert_prob(2.0 * min_sum / total, "Sørensen index"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_counts_strictly_under_threshold() {
        let obs = [100.0, 100.0, 100.0, 100.0];
        let est = [100.0, 149.0, 151.0, 50.0];
        // errors: 0%, 49%, 51%, 50% → hits at q=0.5: first two only
        // (50% is NOT < 50%).
        let hr = hit_rate(&est, &obs, 0.5).unwrap();
        assert_eq!(hr, 0.5);
    }

    #[test]
    fn hit_rate_skips_zero_observations() {
        let obs = [0.0, 100.0];
        let est = [5.0, 100.0];
        assert_eq!(hit_rate(&est, &obs, 0.5).unwrap(), 1.0);
    }

    #[test]
    fn hit_rate_perfect_and_hopeless() {
        let obs = [10.0, 20.0, 30.0];
        assert_eq!(hit_rate(&obs, &obs, 0.5).unwrap(), 1.0);
        let est = [1000.0, 2000.0, 3000.0];
        assert_eq!(hit_rate(&est, &obs, 0.5).unwrap(), 0.0);
    }

    #[test]
    fn hit_rate_errors() {
        assert!(hit_rate(&[1.0], &[1.0, 2.0], 0.5).is_err());
        assert!(hit_rate(&[1.0], &[0.0], 0.5).is_err());
    }

    #[test]
    fn rmse_and_mae_known_values() {
        let est = [1.0, 2.0, 3.0];
        let obs = [2.0, 2.0, 5.0];
        // errors −1, 0, −2 → rmse = sqrt(5/3), mae = 1
        assert!((rmse(&est, &obs).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&est, &obs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_zero_for_identical() {
        let xs = [1.0, 5.0, 9.0];
        assert_eq!(rmse(&xs, &xs).unwrap(), 0.0);
        assert_eq!(mae(&xs, &xs).unwrap(), 0.0);
    }

    #[test]
    fn mape_known_value() {
        let est = [110.0, 90.0];
        let obs = [100.0, 100.0];
        assert!((mape(&est, &obs).unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn log_rmse_measures_decades() {
        let obs = [100.0, 1000.0];
        let est = [1000.0, 10000.0]; // each off by exactly one decade
        assert!((log_rmse(&est, &obs).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_rmse_skips_nonpositive() {
        let obs = [0.0, 100.0];
        let est = [10.0, 100.0];
        assert_eq!(log_rmse(&est, &obs).unwrap(), 0.0);
    }

    #[test]
    fn sorensen_identical_is_one_disjoint_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert!((sorensen_index(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        let b = [0.0, 0.0, 6.0];
        let c = [6.0, 0.0, 0.0];
        assert_eq!(sorensen_index(&b, &c).unwrap(), 0.0);
    }

    #[test]
    fn sorensen_half_overlap() {
        let a = [2.0, 0.0];
        let b = [1.0, 1.0];
        // min-sum = 1, total = 4 → 0.5
        assert!((sorensen_index(&a, &b).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorensen_errors() {
        assert!(sorensen_index(&[0.0], &[0.0]).is_err());
        assert!(sorensen_index(&[-1.0], &[1.0]).is_err());
        assert!(sorensen_index(&[1.0, 2.0], &[1.0]).is_err());
    }
}
