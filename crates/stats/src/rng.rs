//! A tiny embedded pseudo-random generator.
//!
//! `tweetmob-stats` deliberately has zero dependencies, but
//! [`crate::bootstrap`] and the power-law tests need reproducible random
//! streams. SplitMix64 (Steele, Lea & Flood 2014) is a 64-bit
//! splittable generator with excellent statistical quality for its size
//! and a one-line step function — more than adequate for resampling.
//! Simulation-grade randomness elsewhere in the workspace uses the `rand`
//! crate; this type is intentionally not exported as a general RNG.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// (unbiased enough for bootstrap resampling; the modulo bias of the
    /// plain approach would be < 2⁻⁵³ anyway for realistic bounds).
    ///
    /// # Panics
    ///
    /// If `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // lint: allow(lossy-cast) — integer-only u128 fixed-point multiply; the
        // shift guarantees the result is < bound and fits in usize.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_reference_sequence() {
        // Reference values for seed 0 from the canonical SplitMix64
        // implementation (Vigna).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = SplitMix64::new(99);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
