//! Numeric-invariant assertion layer.
//!
//! Estimation pipelines fail most insidiously not by crashing but by
//! silently propagating a NaN or a negative count into a correlation
//! that still prints a plausible number. This module centralises the
//! invariant checks the rest of the workspace threads through its
//! numeric hot paths:
//!
//! * [`assert_finite`] — the value is neither NaN nor ±∞;
//! * [`assert_nonneg`] — finite and `>= 0` (counts, distances, flows);
//! * [`assert_prob`] — finite and in `[0, 1]` (rates, shares, p-values).
//!
//! Each check returns its input so it can wrap an expression in place:
//!
//! ```
//! use tweetmob_stats::check::assert_prob;
//!
//! let hits = 3.0;
//! let used = 4.0;
//! let rate = assert_prob(hits / used, "hit rate");
//! assert_eq!(rate, 0.75);
//! ```
//!
//! The `debug_` variants compile to a pass-through in release builds —
//! use them on per-observation hot loops (OD-matrix assembly, model
//! prediction) where a release-mode branch per value is not acceptable;
//! use the unprefixed variants at API boundaries that run once per fit
//! or per report.
//!
//! All checks panic on violation: a failed invariant here is a bug in
//! the caller (or corrupt upstream data), never a recoverable condition
//! — recoverable validation belongs to [`crate::StatsError`].

/// Asserts that `value` is finite (not NaN, not ±∞) and returns it.
///
/// # Panics
///
/// If `value` is NaN or infinite; `what` names the quantity in the
/// panic message.
#[must_use = "the checked value should be used; call only for its side effect via `let _ =` if not"]
pub fn assert_finite(value: f64, what: &str) -> f64 {
    assert!(
        value.is_finite(),
        "numeric invariant violated: {what} must be finite, got {value}"
    );
    value
}

/// Asserts that `value` is finite and non-negative and returns it.
///
/// # Panics
///
/// If `value` is NaN, infinite or negative.
#[must_use = "the checked value should be used; call only for its side effect via `let _ =` if not"]
pub fn assert_nonneg(value: f64, what: &str) -> f64 {
    assert!(
        value.is_finite() && value >= 0.0,
        "numeric invariant violated: {what} must be finite and >= 0, got {value}"
    );
    value
}

/// Asserts that `value` is a probability — finite and in `[0, 1]` — and
/// returns it.
///
/// # Panics
///
/// If `value` is NaN, infinite or outside `[0, 1]`.
#[must_use = "the checked value should be used; call only for its side effect via `let _ =` if not"]
pub fn assert_prob(value: f64, what: &str) -> f64 {
    assert!(
        value.is_finite() && (0.0..=1.0).contains(&value),
        "numeric invariant violated: {what} must be a probability in [0, 1], got {value}"
    );
    value
}

/// Asserts that every element of `values` is finite.
///
/// # Panics
///
/// On the first NaN/±∞ element, reporting its index.
pub fn assert_finite_slice(values: &[f64], what: &str) {
    for (i, &v) in values.iter().enumerate() {
        assert!(
            v.is_finite(),
            "numeric invariant violated: {what}[{i}] must be finite, got {v}"
        );
    }
}

/// [`assert_finite`] in debug builds; a pass-through in release builds.
#[inline]
#[must_use = "the checked value should be used; call only for its side effect via `let _ =` if not"]
pub fn debug_assert_finite(value: f64, what: &str) -> f64 {
    if cfg!(debug_assertions) {
        assert_finite(value, what)
    } else {
        value
    }
}

/// [`assert_nonneg`] in debug builds; a pass-through in release builds.
#[inline]
#[must_use = "the checked value should be used; call only for its side effect via `let _ =` if not"]
pub fn debug_assert_nonneg(value: f64, what: &str) -> f64 {
    if cfg!(debug_assertions) {
        assert_nonneg(value, what)
    } else {
        value
    }
}

/// [`assert_prob`] in debug builds; a pass-through in release builds.
#[inline]
#[must_use = "the checked value should be used; call only for its side effect via `let _ =` if not"]
pub fn debug_assert_prob(value: f64, what: &str) -> f64 {
    if cfg!(debug_assertions) {
        assert_prob(value, what)
    } else {
        value
    }
}

/// [`assert_finite_slice`] in debug builds; a no-op in release builds.
#[inline]
pub fn debug_assert_finite_slice(values: &[f64], what: &str) {
    if cfg!(debug_assertions) {
        assert_finite_slice(values, what);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_passes_through() {
        assert_eq!(assert_finite(1.5, "x"), 1.5);
        assert_eq!(assert_finite(-3.0, "x"), -3.0);
        assert_eq!(assert_finite(0.0, "x"), 0.0);
    }

    #[test]
    #[should_panic(expected = "flow must be finite")]
    fn finite_rejects_nan() {
        let _ = assert_finite(f64::NAN, "flow");
    }

    #[test]
    #[should_panic(expected = "flow must be finite")]
    fn finite_rejects_infinity() {
        let _ = assert_finite(f64::INFINITY, "flow");
    }

    #[test]
    fn nonneg_passes_through() {
        assert_eq!(assert_nonneg(0.0, "count"), 0.0);
        assert_eq!(assert_nonneg(42.0, "count"), 42.0);
    }

    #[test]
    #[should_panic(expected = "count must be finite and >= 0")]
    fn nonneg_rejects_negative() {
        let _ = assert_nonneg(-1e-9, "count");
    }

    #[test]
    #[should_panic(expected = "count must be finite and >= 0")]
    fn nonneg_rejects_nan() {
        let _ = assert_nonneg(f64::NAN, "count");
    }

    #[test]
    fn prob_accepts_boundaries() {
        assert_eq!(assert_prob(0.0, "p"), 0.0);
        assert_eq!(assert_prob(1.0, "p"), 1.0);
        assert_eq!(assert_prob(0.5, "p"), 0.5);
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn prob_rejects_above_one() {
        let _ = assert_prob(1.0 + 1e-12, "p");
    }

    #[test]
    #[should_panic(expected = "p must be a probability")]
    fn prob_rejects_nan() {
        let _ = assert_prob(f64::NAN, "p");
    }

    #[test]
    fn slice_check_passes_on_finite_input() {
        assert_finite_slice(&[1.0, 2.0, -3.0], "xs");
        assert_finite_slice(&[], "xs");
    }

    #[test]
    #[should_panic(expected = "xs[1] must be finite")]
    fn slice_check_reports_offending_index() {
        assert_finite_slice(&[1.0, f64::NAN, 3.0], "xs");
    }

    #[test]
    fn debug_variants_pass_through_valid_values() {
        assert_eq!(debug_assert_finite(2.0, "x"), 2.0);
        assert_eq!(debug_assert_nonneg(2.0, "x"), 2.0);
        assert_eq!(debug_assert_prob(0.25, "x"), 0.25);
        debug_assert_finite_slice(&[1.0], "xs");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "must be finite"))]
    fn debug_variant_panics_only_with_debug_assertions() {
        let v = debug_assert_finite(f64::NAN, "x");
        // Release builds reach here with the value passed through.
        assert!(v.is_nan());
    }
}
