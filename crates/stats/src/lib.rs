//! # tweetmob-stats
//!
//! From-scratch statistics substrate for the `tweetmob` workspace. No
//! external math dependencies: special functions (ln-gamma, regularised
//! incomplete beta, erf) are implemented here and everything else builds on
//! them.
//!
//! The paper needs, and this crate provides:
//!
//! * **Pearson correlation with a two-tailed p-value** — the paper reports
//!   r = 0.816, p = 2.06e-15 for population estimation (Fig. 3) and uses
//!   Pearson again for Table II. The p-value requires the Student-t CDF,
//!   hence [`special`] and [`distributions`].
//! * **Least-squares fitting in log space** — gravity-model parameters are
//!   "estimated from least-square fitting after taking logarithm of the
//!   formulas" (§IV). [`regression::Ols`] is a small multiple-regression
//!   solver (normal equations + Gaussian elimination with partial
//!   pivoting).
//! * **Logarithmic binning** — Figs. 2 and 4 use log-binned PDFs and
//!   log-binned means ([`binning`]).
//! * **Power-law fitting** — Fig. 2(a) "essentially follows a power-law
//!   distribution"; [`powerlaw`] has a Clauset-style MLE and KS distance.
//! * **HitRate@q and friends** — Table II's HitRate@50% plus RMSE/MAE/SSI
//!   used as additional metrics ([`metrics`]), answering the paper's
//!   future-work call for "more metrics".
//! * **Bootstrap confidence intervals** ([`bootstrap`]) with a tiny
//!   embedded SplitMix64 generator ([`rng`]) so the crate stays
//!   dependency-free.
//! * **Concentration indices** ([`concentration`]) — Gini and Theil —
//!   quantifying the "sparse and uneven population distribution" the
//!   paper blames for Radiation's misfit.
//! * **Numeric-invariant assertions** ([`check`]) — finite / non-negative
//!   / probability checks threaded through the fitting and evaluation
//!   hot paths so poisoned values fail loudly instead of propagating.
//!
//! ## Example
//!
//! ```
//! use tweetmob_stats::correlation::pearson;
//!
//! let x = [1.0, 2.0, 3.0, 4.0, 5.0];
//! let y = [2.1, 3.9, 6.2, 7.8, 10.1];
//! let r = pearson(&x, &y).unwrap();
//! assert!(r.r > 0.99);
//! assert!(r.p_two_tailed < 0.01);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// `!(x > 0.0)` (and friends) are used deliberately throughout: unlike
// `x <= 0.0` they are also true for NaN, which is exactly the poisoned
// input the guards must reject.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Special-function coefficients are quoted at published precision.
#![allow(clippy::excessive_precision)]

pub mod binning;
pub mod bootstrap;
pub mod check;
pub mod concentration;
pub mod correlation;
pub mod descriptive;
pub mod distributions;
pub mod metrics;
pub mod powerlaw;
pub mod regression;
pub mod rng;
pub mod special;

/// Error type shared by the statistics routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Input slice(s) shorter than the minimum the routine needs.
    TooFewSamples {
        /// Samples required.
        needed: usize,
        /// Samples supplied.
        got: usize,
    },
    /// Paired-input routines got slices of different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// An input that must be strictly positive (e.g. for logarithms)
    /// contained a non-positive or non-finite value.
    NonPositiveValue(f64),
    /// Input contained NaN or ±∞ where finite values are required.
    NonFiniteValue(f64),
    /// A degenerate input made the statistic undefined (e.g. zero variance
    /// for correlation, singular design matrix for OLS).
    Degenerate(&'static str),
    /// A routine that needs at least one effective sample saw none at all
    /// (e.g. population rescaling when no tweets hit any study area).
    EmptySample(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::TooFewSamples { needed, got } => {
                write!(f, "need at least {needed} samples, got {got}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired inputs have different lengths: {left} vs {right}")
            }
            StatsError::NonPositiveValue(v) => {
                write!(f, "value {v} must be strictly positive")
            }
            StatsError::NonFiniteValue(v) => write!(f, "value {v} is not finite"),
            StatsError::Degenerate(what) => write!(f, "degenerate input: {what}"),
            StatsError::EmptySample(what) => write!(f, "empty sample: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

pub(crate) fn check_finite(xs: &[f64]) -> Result<()> {
    for &x in xs {
        if !x.is_finite() {
            return Err(StatsError::NonFiniteValue(x));
        }
    }
    Ok(())
}

pub(crate) fn check_paired(x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    Ok(())
}
