//! Spatial-concentration statistics: Gini coefficient and Theil index.
//!
//! The paper's explanation for Radiation's misfit is qualitative:
//! "Australia's population concentrates heavily along its coastline,
//! creating areas with extremely low population densities between
//! populated areas". These two standard inequality measures quantify
//! that claim, and the counterfactual experiment (DESIGN.md E11) uses
//! them to verify that the synthetic uniform country really is less
//! concentrated than the Australian world.

use crate::{Result, StatsError};

/// Gini coefficient of a non-negative distribution, in `[0, 1]`:
/// 0 = perfectly even, → 1 = all mass in one unit.
///
/// Computed from the sorted-values identity
/// `G = (2 Σᵢ i·xᵢ) / (n Σᵢ xᵢ) − (n+1)/n` with 1-based ranks over
/// ascending values.
///
/// # Errors
///
/// * [`StatsError::TooFewSamples`] — empty input.
/// * [`StatsError::NonPositiveValue`] — negative or non-finite entry.
/// * [`StatsError::Degenerate`] — all entries zero.
pub fn gini(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    for &x in xs {
        if !(x >= 0.0) || !x.is_finite() {
            return Err(StatsError::NonPositiveValue(x));
        }
    }
    let total: f64 = xs.iter().sum();
    if total == 0.0 {
        return Err(StatsError::Degenerate("all-zero distribution"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    Ok((2.0 * weighted / (n * total) - (n + 1.0) / n).clamp(0.0, 1.0))
}

/// Theil index `T = Σ (xᵢ/X)·ln(xᵢ/(X/n))` of a positive distribution:
/// 0 = perfectly even, `ln n` = all mass in one unit. Zero entries
/// contribute zero (the `x ln x → 0` limit).
///
/// # Errors
///
/// As [`gini`].
pub fn theil(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    for &x in xs {
        if !(x >= 0.0) || !x.is_finite() {
            return Err(StatsError::NonPositiveValue(x));
        }
    }
    let total: f64 = xs.iter().sum();
    if total == 0.0 {
        return Err(StatsError::Degenerate("all-zero distribution"));
    }
    let n = xs.len() as f64;
    let mean = total / n;
    let mut t = 0.0;
    for &x in xs {
        if x > 0.0 {
            t += (x / total) * (x / mean).ln();
        }
    }
    Ok(t.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_uniform_is_zero() {
        let xs = vec![5.0; 100];
        assert!(gini(&xs).unwrap() < 1e-12);
        assert!(theil(&xs).unwrap() < 1e-12);
    }

    #[test]
    fn gini_of_total_concentration_approaches_one() {
        let mut xs = vec![0.0; 1000];
        xs[0] = 100.0;
        let g = gini(&xs).unwrap();
        assert!(g > 0.99, "g = {g}");
        let t = theil(&xs).unwrap();
        assert!((t - (1000.0f64).ln()).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn gini_known_textbook_value() {
        // [1, 3]: G = (2·(1·1 + 2·3))/(2·4) − 3/2 = 14/8 − 12/8 = 0.25
        assert!((gini(&[1.0, 3.0]).unwrap() - 0.25).abs() < 1e-12);
        // Order must not matter.
        assert!((gini(&[3.0, 1.0]).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn more_unequal_means_higher_indices() {
        let even = [10.0, 10.0, 10.0, 10.0];
        let mild = [5.0, 8.0, 12.0, 15.0];
        let harsh = [1.0, 2.0, 3.0, 34.0];
        assert!(gini(&even).unwrap() < gini(&mild).unwrap());
        assert!(gini(&mild).unwrap() < gini(&harsh).unwrap());
        assert!(theil(&even).unwrap() < theil(&mild).unwrap());
        assert!(theil(&mild).unwrap() < theil(&harsh).unwrap());
    }

    #[test]
    fn scale_invariance() {
        let xs = [1.0, 5.0, 2.0, 9.0];
        let scaled: Vec<f64> = xs.iter().map(|x| x * 1234.5).collect();
        assert!((gini(&xs).unwrap() - gini(&scaled).unwrap()).abs() < 1e-12);
        assert!((theil(&xs).unwrap() - theil(&scaled).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(gini(&[]).is_err());
        assert!(gini(&[-1.0, 2.0]).is_err());
        assert!(gini(&[0.0, 0.0]).is_err());
        assert!(theil(&[]).is_err());
        assert!(theil(&[f64::NAN]).is_err());
        assert!(theil(&[0.0]).is_err());
    }

    #[test]
    fn australia_like_distribution_is_concentrated() {
        // Rough top-20 Australian city populations (the gazetteer's):
        // heavily skewed → Gini comfortably above 0.5.
        let pops = [
            4_757_000.0,
            4_246_000.0,
            2_190_000.0,
            1_898_000.0,
            1_277_000.0,
            614_000.0,
            431_000.0,
            423_000.0,
            297_000.0,
            289_000.0,
            217_000.0,
            184_000.0,
            179_000.0,
            147_000.0,
            132_000.0,
            114_000.0,
            99_000.0,
            92_000.0,
            88_000.0,
            86_000.0,
        ];
        let g = gini(&pops).unwrap();
        assert!(g > 0.5, "gini {g}");
    }
}
