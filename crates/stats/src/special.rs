//! Special functions: ln-gamma, regularised incomplete beta, erf.
//!
//! Implemented from scratch (DESIGN.md §5): Lanczos approximation for
//! ln-gamma, Lentz continued fractions for the incomplete beta, and the
//! Abramowitz & Stegun 7.1.26-style rational approximation refined to a
//! higher-order series for erf. Accuracy targets: ~1e-12 relative for
//! ln-gamma, ~1e-10 absolute for the incomplete beta over the t-test
//! parameter range, which is far tighter than anything the paper's
//! p-values need.

/// Natural log of the gamma function for `x > 0`.
///
/// Lanczos approximation with g = 7, n = 9 coefficients (Boost/Numerical
/// Recipes parameterisation); relative error below 1e-13 for `x > 0`.
///
/// Returns `f64::INFINITY` for `x <= 0` at the poles (non-positive
/// integers) and uses the reflection formula elsewhere on the negative
/// axis.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Poles at the non-positive integers.
        if x <= 0.0 && x == x.floor() {
            return f64::INFINITY;
        }
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        if s == 0.0 {
            return f64::INFINITY;
        }
        return std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The beta function `B(a, b) = Γ(a)Γ(b)/Γ(a+b)` for `a, b > 0`.
pub fn beta(a: f64, b: f64) -> f64 {
    (ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)).exp()
}

/// Regularised incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`.
///
/// Continued-fraction evaluation (modified Lentz), using the symmetry
/// `I_x(a,b) = 1 − I_{1−x}(b,a)` to stay in the rapidly-converging region.
/// NaN inputs propagate as NaN.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x.is_nan() || a.is_nan() || b.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a,b)) in log space for stability.
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_gamma(a) - ln_gamma(b) + ln_gamma(a + b);
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() / a) * beta_cf(a, b, x)
    } else {
        1.0 - (ln_front.exp() / b) * beta_cf(b, a, 1.0 - x)
    }
}

/// Continued fraction for the incomplete beta (Numerical Recipes `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, computed from the regularised incomplete gamma via the
/// series/continued-fraction split; absolute error < 1e-12.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    sign * lower_inc_gamma_regularized(0.5, x * x)
}

/// Complementary error function `1 − erf(x)` without cancellation for
/// large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    upper_inc_gamma_regularized(0.5, x * x)
}

/// Regularised upper incomplete gamma `Q(a, x) = 1 − P(a, x)`, evaluated
/// directly in the tail (continued fraction) so it stays accurate when
/// `P(a, x)` is within one ulp of 1.
pub fn upper_inc_gamma_regularized(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

/// Regularised lower incomplete gamma `P(a, x)` for `a > 0`, `x ≥ 0`.
///
/// Series expansion for `x < a + 1`, continued fraction for the upper tail
/// otherwise (Numerical Recipes `gammp`).
pub fn lower_inc_gamma_regularized(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, tol: f64, label: &str) {
        assert!(
            (got - want).abs() <= tol * want.abs().max(1.0),
            "{label}: got {got}, want {want}"
        );
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let factorials = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in factorials.iter().enumerate() {
            let n = (i + 1) as f64;
            assert_close(ln_gamma(n), f64::ln(f), 1e-12, &format!("ln_gamma({n})"));
        }
    }

    #[test]
    fn ln_gamma_half_integers() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2, Γ(5/2) = 3√π/4
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert_close(ln_gamma(0.5), sqrt_pi.ln(), 1e-12, "ln_gamma(0.5)");
        assert_close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12, "ln_gamma(1.5)");
        assert_close(
            ln_gamma(2.5),
            (3.0 * sqrt_pi / 4.0).ln(),
            1e-12,
            "ln_gamma(2.5)",
        );
    }

    #[test]
    fn ln_gamma_large_argument_stirling_regime() {
        // Reference value from SciPy: gammaln(100) = 359.1342053695754
        assert_close(
            ln_gamma(100.0),
            359.134_205_369_575_4,
            1e-12,
            "ln_gamma(100)",
        );
        // gammaln(1000) = 5905.220423209181
        assert_close(
            ln_gamma(1000.0),
            5_905.220_423_209_181,
            1e-12,
            "ln_gamma(1000)",
        );
    }

    #[test]
    fn ln_gamma_reflection_negative_axis() {
        // Γ(-0.5) = -2√π → ln|Γ(-0.5)| = ln(2√π)
        let want = (2.0 * std::f64::consts::PI.sqrt()).ln();
        assert_close(ln_gamma(-0.5), want, 1e-10, "ln_gamma(-0.5)");
    }

    #[test]
    fn ln_gamma_poles_are_infinite() {
        assert!(ln_gamma(0.0).is_infinite());
        assert!(ln_gamma(-1.0).is_infinite());
        assert!(ln_gamma(-2.0).is_infinite());
    }

    #[test]
    fn beta_function_known_values() {
        // B(1,1) = 1, B(2,3) = 1/12, B(0.5,0.5) = π
        assert_close(beta(1.0, 1.0), 1.0, 1e-12, "B(1,1)");
        assert_close(beta(2.0, 3.0), 1.0 / 12.0, 1e-12, "B(2,3)");
        assert_close(beta(0.5, 0.5), std::f64::consts::PI, 1e-12, "B(.5,.5)");
    }

    #[test]
    fn inc_beta_boundaries() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        assert_eq!(inc_beta(2.0, 3.0, -0.1), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.1), 1.0);
    }

    #[test]
    fn inc_beta_uniform_case_is_identity() {
        // I_x(1,1) = x
        for x in [0.1, 0.25, 0.5, 0.75, 0.9] {
            assert_close(inc_beta(1.0, 1.0, x), x, 1e-12, &format!("I_{x}(1,1)"));
        }
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for (a, b, x) in [(2.0, 5.0, 0.3), (0.5, 0.5, 0.2), (10.0, 3.0, 0.77)] {
            let lhs = inc_beta(a, b, x);
            let rhs = 1.0 - inc_beta(b, a, 1.0 - x);
            assert_close(lhs, rhs, 1e-12, &format!("symmetry a={a} b={b} x={x}"));
        }
    }

    #[test]
    fn inc_beta_reference_values() {
        // SciPy: betainc(2, 3, 0.4) = 0.5248
        assert_close(inc_beta(2.0, 3.0, 0.4), 0.5248, 1e-10, "I_.4(2,3)");
        // betainc(0.5, 0.5, 0.5) = 0.5 (arcsine distribution median)
        assert_close(inc_beta(0.5, 0.5, 0.5), 0.5, 1e-12, "I_.5(.5,.5)");
        // betainc(5, 5, 0.5) = 0.5 by symmetry
        assert_close(inc_beta(5.0, 5.0, 0.5), 0.5, 1e-12, "I_.5(5,5)");
    }

    #[test]
    fn inc_beta_nan_propagates() {
        assert!(inc_beta(2.0, 3.0, f64::NAN).is_nan());
        assert!(inc_beta(f64::NAN, 3.0, 0.5).is_nan());
    }

    #[test]
    fn erf_known_values() {
        // SciPy: erf(1) = 0.8427007929497149, erf(2) = 0.9953222650189527
        assert_close(erf(0.0), 0.0, 1e-15, "erf(0)");
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-10, "erf(1)");
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-10, "erf(2)");
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10, "erf(-1)");
    }

    #[test]
    fn erf_odd_function() {
        for x in [0.1, 0.5, 1.3, 2.7] {
            assert!((erf(x) + erf(-x)).abs() < 1e-14);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [0.0, 0.3, 1.0, 2.5] {
            assert_close(erfc(x), 1.0 - erf(x), 1e-12, &format!("erfc({x})"));
        }
    }

    #[test]
    fn erfc_large_x_no_cancellation() {
        // SciPy: erfc(5) = 1.5374597944280351e-12 — a naive 1-erf(5) would
        // lose all precision here.
        let got = erfc(5.0);
        let want = 1.537_459_794_428_035_1e-12;
        assert!((got - want).abs() / want < 1e-6, "got {got}, want {want}");
    }

    #[test]
    fn inc_gamma_boundaries_and_known() {
        assert_eq!(lower_inc_gamma_regularized(1.0, 0.0), 0.0);
        // P(1, x) = 1 - e^-x
        for x in [0.5, 1.0, 3.0] {
            assert_close(
                lower_inc_gamma_regularized(1.0, x),
                1.0 - (-x).exp(),
                1e-12,
                &format!("P(1,{x})"),
            );
        }
        assert!(lower_inc_gamma_regularized(-1.0, 1.0).is_nan());
        assert!(lower_inc_gamma_regularized(1.0, -1.0).is_nan());
    }

    #[test]
    fn inc_gamma_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.2;
            let v = lower_inc_gamma_regularized(2.5, x);
            assert!(v >= prev, "P(2.5,{x}) = {v} < previous {prev}");
            prev = v;
        }
        assert!(prev > 0.999); // approaches 1
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn ln_gamma_satisfies_recurrence(x in 0.1..50.0f64) {
                // Γ(x+1) = x·Γ(x) ⇒ lnΓ(x+1) = lnΓ(x) + ln x
                let lhs = ln_gamma(x + 1.0);
                let rhs = ln_gamma(x) + x.ln();
                prop_assert!((lhs - rhs).abs() < 1e-10 * lhs.abs().max(1.0),
                    "x={x}: {lhs} vs {rhs}");
            }

            #[test]
            fn inc_beta_in_unit_interval_and_monotone(
                a in 0.1..20.0f64,
                b in 0.1..20.0f64,
                x in 0.0..1.0f64,
                dx in 0.0..0.5f64,
            ) {
                let v = inc_beta(a, b, x);
                prop_assert!((0.0..=1.0).contains(&v), "I_{x}({a},{b}) = {v}");
                let v2 = inc_beta(a, b, (x + dx).min(1.0));
                prop_assert!(v2 >= v - 1e-12, "not monotone: {v2} < {v}");
            }

            #[test]
            fn inc_beta_symmetry_property(
                a in 0.1..20.0f64,
                b in 0.1..20.0f64,
                x in 0.001..0.999f64,
            ) {
                let lhs = inc_beta(a, b, x);
                let rhs = 1.0 - inc_beta(b, a, 1.0 - x);
                prop_assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
            }

            #[test]
            fn erf_bounded_and_odd(x in -6.0..6.0f64) {
                let v = erf(x);
                prop_assert!((-1.0..=1.0).contains(&v));
                prop_assert!((v + erf(-x)).abs() < 1e-12);
                // erf + erfc = 1 at moderate arguments.
                prop_assert!((v + erfc(x) - 1.0).abs() < 1e-10);
            }

            #[test]
            fn inc_gamma_bounded(a in 0.05..30.0f64, x in 0.0..100.0f64) {
                let p = lower_inc_gamma_regularized(a, x);
                prop_assert!((0.0..=1.0).contains(&p), "P({a},{x}) = {p}");
                let q = upper_inc_gamma_regularized(a, x);
                prop_assert!((0.0..=1.0).contains(&q), "Q({a},{x}) = {q}");
                prop_assert!((p + q - 1.0).abs() < 1e-9);
            }
        }
    }
}
