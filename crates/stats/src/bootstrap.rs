//! Bootstrap confidence intervals.
//!
//! The paper reports point estimates only; a credible reproduction should
//! attach uncertainty to Pearson r and HitRate values, so the experiment
//! harness uses percentile-bootstrap intervals from this module.

use crate::descriptive::quantile;
use crate::rng::SplitMix64;
use crate::{Result, StatsError};

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Resamples that produced a finite statistic.
    pub resamples_used: usize,
}

/// Percentile bootstrap for a statistic of paired samples.
///
/// Resamples `(x, y)` pairs with replacement `n_resamples` times, applies
/// `stat`, and returns the `[(1−level)/2, (1+level)/2]` percentile
/// interval. Resamples where `stat` returns an error or a non-finite value
/// (e.g. a degenerate resample with zero variance) are skipped.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] — inputs differ in length.
/// * [`StatsError::TooFewSamples`] — empty input, zero resamples, or fewer
///   than 10 resamples survived.
/// * [`StatsError::Degenerate`] — `level` outside (0, 1) or the statistic
///   failed on the full sample.
pub fn bootstrap_paired<F>(
    x: &[f64],
    y: &[f64],
    stat: F,
    n_resamples: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi>
where
    F: Fn(&[f64], &[f64]) -> Result<f64>,
{
    crate::check_paired(x, y)?;
    if x.is_empty() || n_resamples == 0 {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::Degenerate("level must be in (0,1)"));
    }
    let estimate = stat(x, y)?;
    if !estimate.is_finite() {
        return Err(StatsError::Degenerate(
            "statistic non-finite on full sample",
        ));
    }
    let n = x.len();
    let mut rng = SplitMix64::new(seed);
    let mut stats = Vec::with_capacity(n_resamples);
    let mut rx = vec![0.0; n];
    let mut ry = vec![0.0; n];
    for _ in 0..n_resamples {
        for i in 0..n {
            let j = rng.next_below(n);
            rx[i] = x[j];
            ry[i] = y[j];
        }
        if let Ok(s) = stat(&rx, &ry) {
            if s.is_finite() {
                stats.push(s);
            }
        }
    }
    if stats.len() < 10 {
        return Err(StatsError::TooFewSamples {
            needed: 10,
            got: stats.len(),
        });
    }
    let alpha = (1.0 - level) / 2.0;
    Ok(BootstrapCi {
        estimate,
        lo: quantile(&stats, alpha)?,
        hi: quantile(&stats, 1.0 - alpha)?,
        resamples_used: stats.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::pearson;
    use crate::descriptive::mean;

    fn mean_diff(x: &[f64], y: &[f64]) -> Result<f64> {
        Ok(mean(x)? - mean(y)?)
    }

    #[test]
    fn ci_contains_point_estimate() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| i as f64 * 0.5).collect();
        let ci = bootstrap_paired(&x, &y, mean_diff, 500, 0.95, 1).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.resamples_used >= 490);
    }

    #[test]
    fn ci_narrows_with_sample_size() {
        let make = |n: usize| -> (Vec<f64>, Vec<f64>) {
            let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
            let y: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
            (x, y)
        };
        let (x1, y1) = make(30);
        let (x2, y2) = make(3000);
        let c1 = bootstrap_paired(&x1, &y1, mean_diff, 300, 0.95, 2).unwrap();
        let c2 = bootstrap_paired(&x2, &y2, mean_diff, 300, 0.95, 2).unwrap();
        assert!(c2.hi - c2.lo < c1.hi - c1.lo);
    }

    #[test]
    fn pearson_bootstrap_on_strong_signal() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| v + ((i * 7919) % 100) as f64 * 0.3)
            .collect();
        let ci = bootstrap_paired(&x, &y, |a, b| pearson(a, b).map(|c| c.r), 400, 0.9, 3).unwrap();
        assert!(ci.estimate > 0.9);
        assert!(ci.lo > 0.8, "lo = {}", ci.lo);
        assert!(ci.hi <= 1.0 + 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..40).map(|i| (i * i % 29) as f64).collect();
        let a = bootstrap_paired(&x, &y, mean_diff, 200, 0.95, 42).unwrap();
        let b = bootstrap_paired(&x, &y, mean_diff, 200, 0.95, 42).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(bootstrap_paired(&[], &[], mean_diff, 100, 0.95, 0).is_err());
        assert!(bootstrap_paired(&[1.0], &[1.0, 2.0], mean_diff, 100, 0.95, 0).is_err());
        assert!(bootstrap_paired(&[1.0], &[1.0], mean_diff, 0, 0.95, 0).is_err());
        assert!(bootstrap_paired(&[1.0], &[1.0], mean_diff, 100, 1.5, 0).is_err());
    }
}
