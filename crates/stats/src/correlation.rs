//! Pearson and Spearman correlation with significance tests.
//!
//! The paper's two headline statistics both come through here: the
//! population-estimation correlation "0.816 … with a two-tailed p-value of
//! 2.06×10⁻¹⁵" (Fig. 3, n = 60) and the per-scale model Pearson scores in
//! Table II.

use crate::check::{debug_assert_finite, debug_assert_prob};
use crate::distributions::student_t_two_tailed;
use crate::{check_finite, check_paired, Result, StatsError};
use serde::Serialize;

/// A correlation estimate with its significance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
#[must_use = "a correlation is pure data; dropping it discards the estimate"]
pub struct Correlation {
    /// Correlation coefficient in `[-1, 1]`.
    pub r: f64,
    /// Two-tailed p-value under the t-approximation with `n − 2` degrees
    /// of freedom. `NaN` when `|r| = 1` exactly (the statistic diverges; a
    /// perfectly collinear sample is trivially significant).
    pub p_two_tailed: f64,
    /// Sample size.
    pub n: usize,
}

/// Pearson product-moment correlation of paired samples, with a two-tailed
/// t-test p-value.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] — inputs differ in length.
/// * [`StatsError::TooFewSamples`] — fewer than 3 pairs (the t-test needs
///   `n − 2 ≥ 1`).
/// * [`StatsError::NonFiniteValue`] — NaN/∞ anywhere.
/// * [`StatsError::Degenerate`] — either input has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<Correlation> {
    check_paired(x, y)?;
    if x.len() < 3 {
        return Err(StatsError::TooFewSamples {
            needed: 3,
            got: x.len(),
        });
    }
    check_finite(x)?;
    check_finite(y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(StatsError::Degenerate("x has zero variance"));
    }
    if syy == 0.0 {
        return Err(StatsError::Degenerate("y has zero variance"));
    }
    let r = debug_assert_finite(
        (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0),
        "pearson r",
    );
    let df = n - 2.0;
    let p = if r.abs() >= 1.0 {
        // NaN sentinel: the t statistic diverges at |r| = 1 (documented
        // on `Correlation::p_two_tailed`), so no probability check here.
        f64::NAN
    } else {
        let t = r * (df / (1.0 - r * r)).sqrt();
        debug_assert_prob(student_t_two_tailed(t, df)?, "pearson p-value")
    };
    Ok(Correlation {
        r,
        p_two_tailed: p,
        n: x.len(),
    })
}

/// Pearson correlation of `log10(x)` vs `log10(y)`.
///
/// Mobility and population magnitudes span decades; the paper's log-log
/// scatter plots (Figs. 3–4) imply correlation on logarithmic axes. Pairs
/// where either value is ≤ 0 are **skipped** (a zero-flow pair carries no
/// information on a log plot); the returned `n` reflects the pairs used.
///
/// # Errors
///
/// As [`pearson`], applied to the surviving pairs.
pub fn log_pearson(x: &[f64], y: &[f64]) -> Result<Correlation> {
    check_paired(x, y)?;
    let mut lx = Vec::with_capacity(x.len());
    let mut ly = Vec::with_capacity(y.len());
    for (&xi, &yi) in x.iter().zip(y) {
        if xi > 0.0 && yi > 0.0 && xi.is_finite() && yi.is_finite() {
            lx.push(xi.log10());
            ly.push(yi.log10());
        }
    }
    pearson(&lx, &ly)
}

/// Spearman rank correlation with a t-approximation p-value.
///
/// Ties receive average ranks (the standard "fractional ranking"), so the
/// statistic stays unbiased on count data with many repeated small values.
///
/// # Errors
///
/// As [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Result<Correlation> {
    check_paired(x, y)?;
    check_finite(x)?;
    check_finite(y)?;
    let rx = fractional_ranks(x);
    let ry = fractional_ranks(y);
    pearson(&rx, &ry)
}

/// Average ranks (1-based) with ties sharing their mean rank.
fn fractional_ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the average of ranks i+1..=j+1.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let c = pearson(&x, &y).unwrap();
        assert!((c.r - 1.0).abs() < 1e-12);
        // Exactly collinear → NaN sentinel; float rounding may instead
        // leave r a hair under 1, in which case p must be vanishingly
        // small. Both mean "trivially significant".
        assert!(c.p_two_tailed.is_nan() || c.p_two_tailed < 1e-10);
    }

    #[test]
    fn pearson_perfect_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [8.0, 6.0, 4.0, 2.0];
        let c = pearson(&x, &y).unwrap();
        assert!((c.r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_reference_value() {
        // Hand-computed: r = 17/√(10·42.8) = 0.824163383692134, and the
        // two-tailed p from t = r·√(3/(1−r²)) = 2.52050415…, df = 3 is
        // I_{df/(df+t²)}(1.5, 0.5) = 0.08613863131395945.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 7.0];
        let c = pearson(&x, &y).unwrap();
        assert!((c.r - 0.824_163_383_692_134).abs() < 1e-10);
        assert!((c.p_two_tailed - 0.086_138_631_313_959_45).abs() < 1e-10);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, -1.0, 1.0, -1.0];
        let c = pearson(&x, &y).unwrap();
        assert!(c.r.abs() < 0.5);
        assert!(c.p_two_tailed > 0.3);
    }

    #[test]
    fn pearson_extreme_significance_no_underflow_to_zero_sign() {
        // n = 60, r = 0.816 → t ≈ 10.75, df = 58 → p ≈ 2e-15 (the paper's
        // exact setting). The p-value must be tiny but strictly positive.
        // Construct a sample with r close to 0.816 by mixing signal+noise
        // deterministically.
        let n = 60;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| i as f64 + (((i * 2_654_435_761_usize) % 997) as f64 / 997.0 - 0.5) * 40.0)
            .collect();
        let c = pearson(&x, &y).unwrap();
        assert!(c.p_two_tailed > 0.0);
        assert!(c.p_two_tailed < 1e-6, "r={} p={}", c.r, c.p_two_tailed);
    }

    #[test]
    fn pearson_errors() {
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0, 2.0]),
            Err(StatsError::TooFewSamples { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::Degenerate(_))
        ));
        assert!(matches!(
            pearson(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::NonFiniteValue(_))
        ));
    }

    #[test]
    fn pearson_invariant_to_affine_transform() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 9.0, 3.0, 14.0, 6.0];
        let c1 = pearson(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| 100.0 * v - 40.0).collect();
        let y2: Vec<f64> = y.iter().map(|v| 0.01 * v + 7.0).collect();
        let c2 = pearson(&x2, &y2).unwrap();
        assert!((c1.r - c2.r).abs() < 1e-12);
    }

    #[test]
    fn log_pearson_skips_nonpositive_pairs() {
        let x = [10.0, 100.0, 0.0, 1000.0, -5.0];
        let y = [1.0, 10.0, 50.0, 100.0, 3.0];
        let c = log_pearson(&x, &y).unwrap();
        assert_eq!(c.n, 3); // zero/negative x pairs dropped
        assert!((c.r - 1.0).abs() < 1e-12); // exact power-law relation
    }

    #[test]
    fn log_pearson_power_law_is_perfect() {
        // y = 3 x^2 is a straight line in log space.
        let x: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v * v).collect();
        let c = log_pearson(&x, &y).unwrap();
        assert!((c.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|&v: &f64| v.exp()).collect(); // monotone
        let c = spearman(&x, &y).unwrap();
        assert!((c.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_reference_with_ties() {
        // Hand-computed with fractional ranks: rx = [1, 2.5, 2.5, 4],
        // ry = [1, 3, 2, 4] → r = 4.5/√22.5 = 0.9486832980505138
        // (matches SciPy spearmanr([1,2,2,3],[1,3,2,4]).statistic).
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        let c = spearman(&x, &y).unwrap();
        assert!((c.r - 0.948_683_298_050_513_8).abs() < 1e-12, "r = {}", c.r);
    }

    #[test]
    fn fractional_ranks_handle_ties() {
        let r = fractional_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
        let r = fractional_ranks(&[5.0, 5.0, 5.0]);
        assert_eq!(r, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn ranks_of_distinct_values_are_permutation() {
        let r = fractional_ranks(&[3.0, 1.0, 2.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }
}
