//! Logarithmic binning for heavy-tailed data.
//!
//! The paper's Figure 2 plots log-binned probability densities spanning
//! eight-plus decades, and Figure 4's red dots are "the averaged values in
//! the bins after logarithmic binning". Both operations live here, plus
//! the empirical CCDF used to sanity-check heavy tails.

use crate::{Result, StatsError};
use serde::Serialize;

/// Log-spaced bin edges over `[min, max]`.
#[derive(Debug, Clone)]
pub struct LogBins {
    /// Bin edges, ascending, length `n_bins + 1`.
    edges: Vec<f64>,
}

/// Statistics of one logarithmic bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BinStat {
    /// Geometric centre of the bin.
    pub center: f64,
    /// Lower edge (inclusive).
    pub lo: f64,
    /// Upper edge (exclusive except for the final bin).
    pub hi: f64,
    /// Samples in the bin.
    pub count: u64,
    /// Probability density: `count / (total · width)`; meaningful only
    /// from [`LogBins::pdf`].
    pub density: f64,
    /// Mean of the paired `y` values; meaningful only from
    /// [`LogBins::binned_mean`], NaN otherwise.
    pub mean_y: f64,
}

impl LogBins {
    /// Creates `n_bins` logarithmically spaced bins covering
    /// `[min, max]`.
    ///
    /// # Errors
    ///
    /// * [`StatsError::NonPositiveValue`] — `min ≤ 0` (log scale).
    /// * [`StatsError::Degenerate`] — `max ≤ min` or `n_bins == 0`.
    pub fn new(min: f64, max: f64, n_bins: usize) -> Result<Self> {
        if !(min > 0.0) || !min.is_finite() {
            return Err(StatsError::NonPositiveValue(min));
        }
        if !(max > min) || !max.is_finite() {
            return Err(StatsError::Degenerate("log bins need max > min > 0"));
        }
        if n_bins == 0 {
            return Err(StatsError::Degenerate("log bins need n_bins > 0"));
        }
        let lmin = min.ln();
        let step = (max.ln() - lmin) / n_bins as f64;
        let edges = (0..=n_bins)
            .map(|i| (lmin + step * i as f64).exp())
            .collect();
        Ok(Self { edges })
    }

    /// Creates bins covering the positive values of `xs` with
    /// `bins_per_decade` bins per factor of ten.
    ///
    /// # Errors
    ///
    /// [`StatsError::Degenerate`] when `xs` has no positive finite values
    /// or all positive values are equal.
    pub fn covering(xs: &[f64], bins_per_decade: usize) -> Result<Self> {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for &x in xs {
            if x > 0.0 && x.is_finite() {
                min = min.min(x);
                max = max.max(x);
            }
        }
        if !min.is_finite() || max <= min {
            return Err(StatsError::Degenerate(
                "need at least two distinct positive values",
            ));
        }
        let decades = (max / min).log10();
        let n_bins = ((decades * bins_per_decade as f64).ceil() as usize).max(1);
        // Nudge the top edge up so `max` falls inside the final bin even
        // after floating-point round-trips.
        Self::new(min, max * (1.0 + 1e-12), n_bins)
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.edges.len() - 1
    }

    /// Whether there are no bins (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bin index of `x`, or `None` when `x` is outside `[min, max]` or not
    /// positive. The final bin includes its upper edge.
    pub fn index_of(&self, x: f64) -> Option<usize> {
        if !(x > 0.0) || !x.is_finite() {
            return None;
        }
        let first = self.edges[0];
        // lint: allow(no-panic) — every constructor rejects fewer than two
        // edges (LogBins::new / from_edges), so `last()` cannot be None
        let last = *self.edges.last().unwrap();
        if x < first || x > last {
            return None;
        }
        // Binary search on edges.
        match self.edges.binary_search_by(|e| e.total_cmp(&x)) {
            Ok(i) => Some(i.min(self.len() - 1)),
            Err(i) => Some(i - 1),
        }
    }

    /// Empty per-bin skeleton with centres/edges filled in.
    fn skeleton(&self) -> Vec<BinStat> {
        (0..self.len())
            .map(|i| BinStat {
                center: (self.edges[i] * self.edges[i + 1]).sqrt(),
                lo: self.edges[i],
                hi: self.edges[i + 1],
                count: 0,
                density: 0.0,
                mean_y: f64::NAN,
            })
            .collect()
    }

    /// Log-binned probability density of `xs` (non-positive and
    /// out-of-range samples are ignored; density integrates to the
    /// retained fraction).
    pub fn pdf(&self, xs: &[f64]) -> Vec<BinStat> {
        let mut bins = self.skeleton();
        let mut total = 0u64;
        for &x in xs {
            if let Some(i) = self.index_of(x) {
                bins[i].count += 1;
                total += 1;
            }
        }
        if total > 0 {
            for b in &mut bins {
                b.density = b.count as f64 / (total as f64 * (b.hi - b.lo));
            }
        }
        bins
    }

    /// Bins pairs by `x` and records the arithmetic mean of the `y`
    /// values per bin (the paper's Fig. 4 red dots). Pairs whose `x` falls
    /// outside the bins are skipped.
    ///
    /// # Errors
    ///
    /// [`StatsError::LengthMismatch`] when slices differ in length.
    pub fn binned_mean(&self, x: &[f64], y: &[f64]) -> Result<Vec<BinStat>> {
        crate::check_paired(x, y)?;
        let mut bins = self.skeleton();
        let mut sums = vec![0.0f64; self.len()];
        for (&xi, &yi) in x.iter().zip(y) {
            if let Some(i) = self.index_of(xi) {
                bins[i].count += 1;
                sums[i] += yi;
            }
        }
        for (b, s) in bins.iter_mut().zip(sums) {
            if b.count > 0 {
                b.mean_y = s / b.count as f64;
            }
        }
        Ok(bins)
    }
}

/// Empirical complementary CDF: returns `(value, P(X ≥ value))` pairs at
/// each distinct sample value, descending in probability. Useful for
/// eyeballing heavy tails without binning artefacts.
pub fn ccdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return Vec::new();
    }
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let v = sorted[i];
        // P(X >= v) = (count of samples >= v) / n
        out.push((v, (sorted.len() - i) as f64 / n));
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == v {
            j += 1;
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_log_spaced() {
        let b = LogBins::new(1.0, 1000.0, 3).unwrap();
        assert_eq!(b.len(), 3);
        let ratios: Vec<f64> = (0..3).map(|i| b.edges[i + 1] / b.edges[i]).collect();
        for r in &ratios {
            assert!((r - 10.0).abs() < 1e-9, "ratio {r}");
        }
    }

    #[test]
    fn construction_rejects_bad_ranges() {
        assert!(LogBins::new(0.0, 10.0, 5).is_err());
        assert!(LogBins::new(-1.0, 10.0, 5).is_err());
        assert!(LogBins::new(10.0, 10.0, 5).is_err());
        assert!(LogBins::new(10.0, 1.0, 5).is_err());
        assert!(LogBins::new(1.0, 10.0, 0).is_err());
    }

    #[test]
    fn index_of_boundaries() {
        let b = LogBins::new(1.0, 100.0, 2).unwrap(); // edges ~1, ~10, ~100
        assert_eq!(b.index_of(1.0), Some(0));
        assert_eq!(b.index_of(9.99), Some(0));
        // 10.0 sits on the interior edge; float placement of the edge may
        // put it on either side, but it must land in one of the two bins.
        assert!(matches!(b.index_of(10.0), Some(0) | Some(1)));
        assert_eq!(b.index_of(100.0), Some(1)); // top edge inclusive
        assert_eq!(b.index_of(100.01), None);
        assert_eq!(b.index_of(0.99), None);
        assert_eq!(b.index_of(0.0), None);
        assert_eq!(b.index_of(-5.0), None);
        assert_eq!(b.index_of(f64::NAN), None);
    }

    #[test]
    fn covering_spans_the_data() {
        let xs = [0.5, 3.0, 700.0, 42.0];
        let b = LogBins::covering(&xs, 4).unwrap();
        for &x in &xs {
            assert!(b.index_of(x).is_some(), "x = {x} not covered");
        }
    }

    #[test]
    fn covering_ignores_nonpositive() {
        let xs = [-1.0, 0.0, 2.0, 20.0];
        let b = LogBins::covering(&xs, 2).unwrap();
        assert!(b.index_of(2.0).is_some());
        assert!(b.index_of(-1.0).is_none());
    }

    #[test]
    fn covering_rejects_degenerate() {
        assert!(LogBins::covering(&[5.0, 5.0], 2).is_err());
        assert!(LogBins::covering(&[-1.0, 0.0], 2).is_err());
        assert!(LogBins::covering(&[], 2).is_err());
    }

    #[test]
    fn pdf_integrates_to_one_for_in_range_data() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let b = LogBins::covering(&xs, 5).unwrap();
        let pdf = b.pdf(&xs);
        let integral: f64 = pdf.iter().map(|s| s.density * (s.hi - s.lo)).sum();
        assert!((integral - 1.0).abs() < 1e-9, "integral {integral}");
        let total: u64 = pdf.iter().map(|s| s.count).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn pdf_of_uniform_log_data_is_flat_in_log() {
        // Samples placed at bin centres, equally many per bin → density
        // inversely proportional to bin width.
        let b = LogBins::new(1.0, 10_000.0, 4).unwrap();
        let mut xs = Vec::new();
        let pdf0 = b.pdf(&[]);
        for s in &pdf0 {
            for _ in 0..100 {
                xs.push(s.center);
            }
        }
        let pdf = b.pdf(&xs);
        for s in &pdf {
            assert_eq!(s.count, 100);
            let expect = 100.0 / (400.0 * (s.hi - s.lo));
            assert!((s.density - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn binned_mean_reproduces_constant_relation() {
        let x: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let b = LogBins::covering(&x, 3).unwrap();
        let stats = b.binned_mean(&x, &y).unwrap();
        for s in stats.iter().filter(|s| s.count > 0) {
            // mean(2x over bin) must sit inside [2·lo, 2·hi].
            assert!(s.mean_y >= 2.0 * s.lo && s.mean_y <= 2.0 * s.hi);
        }
    }

    #[test]
    fn binned_mean_empty_bins_are_nan() {
        let b = LogBins::new(1.0, 1000.0, 3).unwrap();
        let stats = b.binned_mean(&[2.0], &[5.0]).unwrap();
        assert_eq!(stats[0].count, 1);
        assert_eq!(stats[0].mean_y, 5.0);
        assert!(stats[1].mean_y.is_nan());
        assert!(stats[2].mean_y.is_nan());
    }

    #[test]
    fn binned_mean_length_mismatch() {
        let b = LogBins::new(1.0, 10.0, 2).unwrap();
        assert!(b.binned_mean(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn bin_center_is_geometric_mean_of_edges() {
        let b = LogBins::new(1.0, 100.0, 2).unwrap();
        let pdf = b.pdf(&[]);
        assert!((pdf[0].center - (1.0f64 * 10.0).sqrt()).abs() < 1e-9);
        assert!((pdf[1].center - (10.0f64 * 100.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn ccdf_basic_properties() {
        let c = ccdf(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(c.len(), 3); // distinct values
        assert_eq!(c[0], (1.0, 1.0)); // P(X >= min) = 1
        assert_eq!(c[1], (2.0, 0.75));
        assert_eq!(c[2], (3.0, 0.25));
    }

    #[test]
    fn ccdf_monotone_decreasing() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 50) as f64).collect();
        let c = ccdf(&xs);
        for w in c.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 > w[1].1);
        }
    }

    #[test]
    fn ccdf_empty_and_nan() {
        assert!(ccdf(&[]).is_empty());
        assert_eq!(ccdf(&[f64::NAN, 2.0]).len(), 1);
    }
}
