//! Ordinary least squares for small predictor counts.
//!
//! The gravity models are fitted "from least-square fitting after taking
//! logarithm of the formulas" (paper §IV):
//!
//! * 4-parameter: `log P = log C + α·log m + β·log n − γ·log d` — three
//!   predictors plus intercept;
//! * 2-parameter: `log P − log(mn) = log C − γ·log d` — one predictor plus
//!   intercept.
//!
//! Predictor counts are tiny (≤ 3) while observation counts can be large,
//! so [`Ols`] accumulates the `XᵀX` / `Xᵀy` normal equations incrementally
//! in O(k²) per row and solves once by Gaussian elimination with partial
//! pivoting — no observation matrix is ever materialised.

use crate::{Result, StatsError};

/// Incremental ordinary-least-squares accumulator with intercept.
///
/// ```
/// use tweetmob_stats::regression::Ols;
///
/// // y = 2 + 3·a − 1·b
/// let mut ols = Ols::new(2);
/// for (a, b) in [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (2.0, 3.0), (4.0, 1.0)] {
///     ols.add(&[a, b], 2.0 + 3.0 * a - b).unwrap();
/// }
/// let fit = ols.solve().unwrap();
/// assert!((fit.intercept() - 2.0).abs() < 1e-9);
/// assert!((fit.coef(0) - 3.0).abs() < 1e-9);
/// assert!((fit.coef(1) + 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Ols {
    /// Number of predictors (excluding intercept).
    k: usize,
    /// Normal matrix XᵀX, row-major, (k+1)².
    xtx: Vec<f64>,
    /// Right-hand side Xᵀy, length k+1.
    xty: Vec<f64>,
    /// Accumulators for R².
    sum_y: f64,
    sum_y2: f64,
    n: usize,
}

/// A solved least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// `[intercept, β₁, …, β_k]`.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
    /// Observations used.
    pub n: usize,
}

impl OlsFit {
    /// Fitted intercept.
    #[inline]
    pub fn intercept(&self) -> f64 {
        self.coefficients[0]
    }

    /// Fitted coefficient of predictor `i` (0-based, excluding intercept).
    ///
    /// # Panics
    ///
    /// If `i >= k`.
    #[inline]
    pub fn coef(&self, i: usize) -> f64 {
        self.coefficients[i + 1]
    }

    /// Predicts `ŷ` for a predictor row.
    ///
    /// # Panics
    ///
    /// If `xs.len() + 1 != coefficients.len()`.
    pub fn predict(&self, xs: &[f64]) -> f64 {
        assert_eq!(
            xs.len() + 1,
            self.coefficients.len(),
            "predictor count mismatch"
        );
        self.coefficients[0]
            + xs.iter()
                .zip(&self.coefficients[1..])
                .map(|(x, b)| x * b)
                .sum::<f64>()
    }
}

impl Ols {
    /// Creates an accumulator for `k` predictors (plus an implicit
    /// intercept). `k = 0` fits a constant.
    pub fn new(k: usize) -> Self {
        let dim = k + 1;
        Self {
            k,
            xtx: vec![0.0; dim * dim],
            xty: vec![0.0; dim],
            sum_y: 0.0,
            sum_y2: 0.0,
            n: 0,
        }
    }

    /// Number of observations accumulated so far.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds one observation.
    ///
    /// # Errors
    ///
    /// [`StatsError::LengthMismatch`] when `xs.len() != k`;
    /// [`StatsError::NonFiniteValue`] for NaN/∞ anywhere in the row.
    pub fn add(&mut self, xs: &[f64], y: f64) -> Result<()> {
        if xs.len() != self.k {
            return Err(StatsError::LengthMismatch {
                left: xs.len(),
                right: self.k,
            });
        }
        if !y.is_finite() {
            return Err(StatsError::NonFiniteValue(y));
        }
        for &x in xs {
            if !x.is_finite() {
                return Err(StatsError::NonFiniteValue(x));
            }
        }
        let dim = self.k + 1;
        // Row vector with the intercept folded in as x₀ = 1.
        let xi = |i: usize| if i == 0 { 1.0 } else { xs[i - 1] };
        for r in 0..dim {
            let xr = xi(r);
            self.xty[r] += xr * y;
            for c in r..dim {
                let v = xr * xi(c);
                self.xtx[r * dim + c] += v;
            }
        }
        self.sum_y += y;
        self.sum_y2 += y * y;
        self.n += 1;
        Ok(())
    }

    /// Solves the normal equations.
    ///
    /// # Errors
    ///
    /// * [`StatsError::TooFewSamples`] — fewer observations than
    ///   coefficients.
    /// * [`StatsError::Degenerate`] — singular normal matrix (collinear or
    ///   constant predictors).
    pub fn solve(&self) -> Result<OlsFit> {
        let dim = self.k + 1;
        if self.n < dim {
            return Err(StatsError::TooFewSamples {
                needed: dim,
                got: self.n,
            });
        }
        // Mirror the upper triangle into a working copy.
        let mut a = vec![0.0; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                a[r * dim + c] = if c >= r {
                    self.xtx[r * dim + c]
                } else {
                    self.xtx[c * dim + r]
                };
            }
        }
        let mut b = self.xty.clone();
        gaussian_solve(&mut a, &mut b, dim)?;

        // R² = 1 − SS_res / SS_tot, with SS_res via the normal-equation
        // identity SS_res = Σy² − βᵀXᵀy.
        let ss_tot = self.sum_y2 - self.sum_y * self.sum_y / self.n as f64;
        let explained: f64 = b.iter().zip(&self.xty).map(|(bi, xy)| bi * xy).sum();
        let ss_res = (self.sum_y2 - explained).max(0.0);
        let r_squared = if ss_tot > 0.0 {
            (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
        } else {
            f64::NAN
        };
        Ok(OlsFit {
            coefficients: b,
            r_squared,
            n: self.n,
        })
    }
}

/// Solves `A x = b` in place by Gaussian elimination with partial
/// pivoting; `b` holds the solution on return.
fn gaussian_solve(a: &mut [f64], b: &mut [f64], dim: usize) -> Result<()> {
    for col in 0..dim {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col * dim + col].abs();
        for row in (col + 1)..dim {
            let v = a[row * dim + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return Err(StatsError::Degenerate("singular normal matrix"));
        }
        if pivot != col {
            for c in 0..dim {
                a.swap(col * dim + c, pivot * dim + c);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        let diag = a[col * dim + col];
        for row in (col + 1)..dim {
            let f = a[row * dim + col] / diag;
            if f == 0.0 {
                continue;
            }
            for c in col..dim {
                a[row * dim + c] -= f * a[col * dim + c];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    for col in (0..dim).rev() {
        let mut acc = b[col];
        for c in (col + 1)..dim {
            acc -= a[col * dim + c] * b[c];
        }
        b[col] = acc / a[col * dim + col];
    }
    Ok(())
}

/// Convenience: simple linear regression `y = a + b·x`, returning
/// `(intercept, slope, r_squared)`.
///
/// # Errors
///
/// As [`Ols::add`] / [`Ols::solve`].
pub fn simple_linear(x: &[f64], y: &[f64]) -> Result<(f64, f64, f64)> {
    crate::check_paired(x, y)?;
    let mut ols = Ols::new(1);
    for (&xi, &yi) in x.iter().zip(y) {
        ols.add(&[xi], yi)?;
    }
    let fit = ols.solve()?;
    Ok((fit.intercept(), fit.coef(0), fit.r_squared))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let (a, b, r2) = simple_linear(&x, &y).unwrap();
        assert!((a + 7.0).abs() < 1e-9);
        assert!((b - 3.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_close() {
        // Deterministic "noise" via a hash-like sequence.
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + 1.0 + (((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5))
            .collect();
        let (a, b, r2) = simple_linear(&x, &y).unwrap();
        assert!((a - 1.0).abs() < 0.2, "a = {a}");
        assert!((b - 2.0).abs() < 0.05, "b = {b}");
        assert!(r2 > 0.99);
    }

    #[test]
    fn three_predictor_recovery_gravity_shape() {
        // The actual gravity-model fit shape: log P = c + α·lm + β·ln − γ·ld
        let mut ols = Ols::new(3);
        let mut k = 1u64;
        for _ in 0..200 {
            // Cheap deterministic pseudo-random predictors.
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lm = (k >> 33) as f64 / 2f64.powi(31) * 5.0 + 3.0;
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ln = (k >> 33) as f64 / 2f64.powi(31) * 5.0 + 3.0;
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ld = (k >> 33) as f64 / 2f64.powi(31) * 3.0;
            let y = 0.5 + 0.9 * lm + 0.7 * ln - 2.0 * ld;
            ols.add(&[lm, ln, ld], y).unwrap();
        }
        let fit = ols.solve().unwrap();
        assert!((fit.intercept() - 0.5).abs() < 1e-9);
        assert!((fit.coef(0) - 0.9).abs() < 1e-9);
        assert!((fit.coef(1) - 0.7).abs() < 1e-9);
        assert!((fit.coef(2) + 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_fit_with_zero_predictors() {
        let mut ols = Ols::new(0);
        for y in [2.0, 4.0, 6.0] {
            ols.add(&[], y).unwrap();
        }
        let fit = ols.solve().unwrap();
        assert!((fit.intercept() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_predictors_detected() {
        let mut ols = Ols::new(2);
        for i in 0..10 {
            let x = i as f64;
            ols.add(&[x, 2.0 * x], x).unwrap(); // second predictor = 2 × first
        }
        assert!(matches!(ols.solve(), Err(StatsError::Degenerate(_))));
    }

    #[test]
    fn constant_predictor_is_collinear_with_intercept() {
        let mut ols = Ols::new(1);
        for i in 0..10 {
            ols.add(&[5.0], i as f64).unwrap();
        }
        assert!(matches!(ols.solve(), Err(StatsError::Degenerate(_))));
    }

    #[test]
    fn underdetermined_rejected() {
        let mut ols = Ols::new(3);
        ols.add(&[1.0, 2.0, 3.0], 1.0).unwrap();
        ols.add(&[2.0, 1.0, 0.0], 2.0).unwrap();
        assert!(matches!(
            ols.solve(),
            Err(StatsError::TooFewSamples { needed: 4, got: 2 })
        ));
    }

    #[test]
    fn wrong_row_width_rejected() {
        let mut ols = Ols::new(2);
        assert!(matches!(
            ols.add(&[1.0], 2.0),
            Err(StatsError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut ols = Ols::new(1);
        assert!(ols.add(&[f64::NAN], 1.0).is_err());
        assert!(ols.add(&[1.0], f64::INFINITY).is_err());
    }

    #[test]
    fn predict_matches_training_on_exact_fit() {
        let mut ols = Ols::new(2);
        // Rows lie exactly on y = 1.5 + 1.5·x₁ + 2.5·x₂.
        let rows = [
            ([1.0, 2.0], 8.0),
            ([2.0, 1.0], 7.0),
            ([3.0, 3.0], 13.5),
            ([0.0, 1.0], 4.0),
        ];
        for (xs, y) in rows {
            ols.add(&xs, y).unwrap();
        }
        let fit = ols.solve().unwrap();
        for (xs, y) in rows {
            assert!((fit.predict(&xs) - y).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "predictor count mismatch")]
    fn predict_wrong_width_panics() {
        let fit = OlsFit {
            coefficients: vec![1.0, 2.0],
            r_squared: 1.0,
            n: 5,
        };
        fit.predict(&[1.0, 2.0]);
    }

    #[test]
    fn r_squared_zero_for_pure_noise_mean_model() {
        // y unrelated to x: R² should be small.
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let (_, _, r2) = simple_linear(&x, &y).unwrap();
        assert!(r2 < 0.05, "r2 = {r2}");
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn exact_line_recovered_for_arbitrary_parameters(
                intercept in -1e4..1e4f64,
                slope in -1e3..1e3f64,
                xs in prop::collection::vec(-1e3..1e3f64, 3..60),
            ) {
                // Need at least two distinct x values for a unique line.
                let distinct = {
                    let mut v = xs.clone();
                    v.sort_by(f64::total_cmp);
                    v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
                    v.len()
                };
                prop_assume!(distinct >= 2);
                let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
                let (a, b, _) = simple_linear(&xs, &ys).unwrap();
                let scale = intercept.abs().max(slope.abs()).max(1.0);
                prop_assert!((a - intercept).abs() < 1e-5 * scale, "a {a} vs {intercept}");
                prop_assert!((b - slope).abs() < 1e-5 * scale, "b {b} vs {slope}");
            }

            #[test]
            fn r_squared_always_in_unit_interval(
                rows in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 3..60),
            ) {
                let xs: Vec<f64> = rows.iter().map(|r| r.0).collect();
                let ys: Vec<f64> = rows.iter().map(|r| r.1).collect();
                if let Ok((_, _, r2)) = simple_linear(&xs, &ys) {
                    prop_assert!((0.0..=1.0).contains(&r2) || r2.is_nan(), "r2 = {r2}");
                }
            }

            #[test]
            fn residuals_orthogonal_to_predictors(
                rows in prop::collection::vec((-1e2..1e2f64, -1e2..1e2f64, -1e2..1e2f64), 6..50),
            ) {
                // The normal equations force Σ residual·x = 0 — a defining
                // invariant of least squares.
                let mut ols = Ols::new(2);
                for &(x1, x2, y) in &rows {
                    ols.add(&[x1, x2], y).unwrap();
                }
                if let Ok(fit) = ols.solve() {
                    let mut dot1 = 0.0;
                    let mut dot2 = 0.0;
                    let mut dot0 = 0.0;
                    for &(x1, x2, y) in &rows {
                        let r = y - fit.predict(&[x1, x2]);
                        dot0 += r;
                        dot1 += r * x1;
                        dot2 += r * x2;
                    }
                    let tol = 1e-6 * rows.len() as f64 * 1e4;
                    prop_assert!(dot0.abs() < tol, "Σr = {dot0}");
                    prop_assert!(dot1.abs() < tol, "Σr·x1 = {dot1}");
                    prop_assert!(dot2.abs() < tol, "Σr·x2 = {dot2}");
                }
            }
        }
    }
}
