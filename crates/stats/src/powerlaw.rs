//! Power-law fitting for heavy-tailed distributions.
//!
//! The paper observes that "the distribution of the number of Tweets per
//! user essentially follows a power-law distribution" (Fig. 2a). This
//! module provides the Clauset–Shalizi–Newman continuous MLE
//! `α̂ = 1 + n / Σ ln(xᵢ/xmin)`, the Kolmogorov–Smirnov distance between
//! the sample and the fitted law, and an `xmin` scan that minimises it.

use crate::{Result, StatsError};
use serde::Serialize;

/// A fitted power law `p(x) ∝ x^(−α)` for `x ≥ xmin`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PowerLawFit {
    /// Fitted exponent α (> 1 for a normalisable tail).
    pub alpha: f64,
    /// Lower cut-off used for the fit.
    pub xmin: f64,
    /// Samples at or above `xmin`.
    pub n_tail: usize,
    /// Kolmogorov–Smirnov distance between the tail sample and the fit.
    pub ks_distance: f64,
}

/// Fits α by maximum likelihood with a fixed `xmin`.
///
/// # Errors
///
/// * [`StatsError::NonPositiveValue`] — `xmin ≤ 0`.
/// * [`StatsError::TooFewSamples`] — fewer than 2 samples ≥ `xmin`.
/// * [`StatsError::Degenerate`] — all tail samples equal `xmin` (α
///   diverges).
pub fn fit_alpha(xs: &[f64], xmin: f64) -> Result<PowerLawFit> {
    if !(xmin > 0.0) || !xmin.is_finite() {
        return Err(StatsError::NonPositiveValue(xmin));
    }
    let mut sum_log = 0.0;
    let mut tail: Vec<f64> = Vec::new();
    for &x in xs {
        if x.is_finite() && x >= xmin {
            sum_log += (x / xmin).ln();
            tail.push(x);
        }
    }
    if tail.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: tail.len(),
        });
    }
    if sum_log <= 0.0 {
        return Err(StatsError::Degenerate("all tail samples equal xmin"));
    }
    let n = tail.len() as f64;
    let alpha = 1.0 + n / sum_log;
    let ks = ks_distance_tail(&mut tail, xmin, alpha);
    Ok(PowerLawFit {
        alpha,
        xmin,
        n_tail: tail.len(),
        ks_distance: ks,
    })
}

/// Scans candidate `xmin` values (the distinct sample values up to the
/// 90th percentile) and returns the fit minimising the KS distance —
/// Clauset et al.'s recommended procedure.
///
/// # Errors
///
/// [`StatsError::TooFewSamples`] when fewer than 10 positive samples
/// (an `xmin` scan on less is meaningless); propagates fit errors when
/// every candidate fails.
pub fn fit_scan_xmin(xs: &[f64]) -> Result<PowerLawFit> {
    let mut positive: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|&x| x > 0.0 && x.is_finite())
        .collect();
    if positive.len() < 10 {
        return Err(StatsError::TooFewSamples {
            needed: 10,
            got: positive.len(),
        });
    }
    positive.sort_by(f64::total_cmp);
    let cutoff = positive[(positive.len() as f64 * 0.9).floor() as usize];
    let mut candidates: Vec<f64> = positive.clone();
    candidates.dedup();
    let mut best: Option<PowerLawFit> = None;
    for &xmin in candidates.iter().filter(|&&v| v <= cutoff) {
        if let Ok(fit) = fit_alpha(&positive, xmin) {
            if best.is_none_or(|b| fit.ks_distance < b.ks_distance) {
                best = Some(fit);
            }
        }
    }
    best.ok_or(StatsError::Degenerate("no xmin candidate produced a fit"))
}

/// KS distance between the sorted tail sample and the continuous power-law
/// CDF `1 − (x/xmin)^(1−α)`.
fn ks_distance_tail(tail: &mut [f64], xmin: f64, alpha: f64) -> f64 {
    tail.sort_by(f64::total_cmp);
    let n = tail.len() as f64;
    let mut ks: f64 = 0.0;
    for (i, &x) in tail.iter().enumerate() {
        let model = 1.0 - (x / xmin).powf(1.0 - alpha);
        let emp_hi = (i + 1) as f64 / n;
        let emp_lo = i as f64 / n;
        ks = ks.max((model - emp_hi).abs()).max((model - emp_lo).abs());
    }
    ks
}

/// Draws one Pareto (continuous power-law) sample from a uniform variate
/// `u ∈ (0, 1)`: `x = xmin · (1 − u)^(−1/(α−1))`.
///
/// Deterministic helper used by tests and the synthetic generator (which
/// supplies its own RNG).
#[inline]
pub fn pareto_inverse_cdf(u: f64, xmin: f64, alpha: f64) -> f64 {
    xmin * (1.0 - u).powf(-1.0 / (alpha - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn pareto_sample(n: usize, xmin: f64, alpha: f64, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| pareto_inverse_cdf(rng.next_f64(), xmin, alpha))
            .collect()
    }

    #[test]
    fn mle_recovers_known_alpha() {
        for alpha in [1.8, 2.5, 3.2] {
            let xs = pareto_sample(50_000, 1.0, alpha, 42);
            let fit = fit_alpha(&xs, 1.0).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.05,
                "alpha {alpha}: fitted {}",
                fit.alpha
            );
            assert_eq!(fit.n_tail, 50_000);
        }
    }

    #[test]
    fn ks_distance_small_for_true_power_law() {
        let xs = pareto_sample(20_000, 1.0, 2.2, 7);
        let fit = fit_alpha(&xs, 1.0).unwrap();
        // Expected KS ~ 1/sqrt(n) ≈ 0.007; allow generous headroom.
        assert!(fit.ks_distance < 0.02, "ks = {}", fit.ks_distance);
    }

    #[test]
    fn ks_distance_large_for_uniform_data() {
        let xs: Vec<f64> = (1..=1000).map(|i| 1.0 + i as f64 / 1000.0).collect();
        let fit = fit_alpha(&xs, 1.0).unwrap();
        assert!(fit.ks_distance > 0.1, "ks = {}", fit.ks_distance);
    }

    #[test]
    fn xmin_scan_finds_true_cutoff_region() {
        // Power law only above xmin = 10; uniform noise below.
        let mut xs = pareto_sample(20_000, 10.0, 2.5, 11);
        let mut rng = SplitMix64::new(13);
        for _ in 0..5_000 {
            xs.push(1.0 + 9.0 * rng.next_f64());
        }
        let fit = fit_scan_xmin(&xs).unwrap();
        assert!(
            fit.xmin >= 5.0 && fit.xmin <= 20.0,
            "scan chose xmin = {}",
            fit.xmin
        );
        assert!((fit.alpha - 2.5).abs() < 0.15, "alpha = {}", fit.alpha);
    }

    #[test]
    fn tail_restriction_respected() {
        let xs = [0.5, 1.0, 2.0, 4.0, 8.0];
        let fit = fit_alpha(&xs, 1.0).unwrap();
        assert_eq!(fit.n_tail, 4); // 0.5 excluded
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(fit_alpha(&[1.0, 2.0], 0.0).is_err());
        assert!(fit_alpha(&[1.0, 2.0], -1.0).is_err());
        assert!(fit_alpha(&[0.5], 1.0).is_err()); // nothing in tail
        assert!(matches!(
            fit_alpha(&[2.0, 2.0, 2.0], 2.0),
            Err(StatsError::Degenerate(_))
        ));
        assert!(fit_scan_xmin(&[1.0, 2.0, 3.0]).is_err()); // < 10 samples
    }

    #[test]
    fn pareto_inverse_cdf_boundaries() {
        assert_eq!(pareto_inverse_cdf(0.0, 2.0, 3.0), 2.0); // u=0 → xmin
        let big = pareto_inverse_cdf(0.999999, 2.0, 3.0);
        assert!(big > 100.0); // u→1 → tail
    }

    #[test]
    fn pareto_median_matches_theory() {
        // Median of Pareto(xmin, alpha) = xmin · 2^(1/(α−1))
        let xs = pareto_sample(100_000, 1.0, 2.5, 3);
        let med = crate::descriptive::median(&xs).unwrap();
        let theory = 2.0f64.powf(1.0 / 1.5);
        assert!((med - theory).abs() / theory < 0.02, "median {med}");
    }
}
