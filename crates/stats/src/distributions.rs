//! Probability distributions needed by the hypothesis tests: Student-t and
//! the standard normal.

use crate::special::{erf, erfc, inc_beta};
use crate::{Result, StatsError};

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal survival function `1 − Φ(x)`, computed without
/// cancellation in the far tail.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse standard normal CDF (quantile function) via the Acklam rational
/// approximation refined with one Halley step; absolute error < 1e-12 on
/// `(1e-300, 1 − 1e-16)`.
///
/// # Errors
///
/// [`StatsError::Degenerate`] for `p` outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 || p.is_nan() {
        return Err(StatsError::Degenerate("quantile requires p in (0,1)"));
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Student-t CDF with `df` degrees of freedom.
///
/// Uses the incomplete-beta identity
/// `P(T ≤ t) = 1 − ½ I_{df/(df+t²)}(df/2, 1/2)` for `t ≥ 0` and symmetry
/// for `t < 0`.
///
/// # Errors
///
/// [`StatsError::Degenerate`] for `df ≤ 0`.
pub fn student_t_cdf(t: f64, df: f64) -> Result<f64> {
    if df <= 0.0 || df.is_nan() {
        return Err(StatsError::Degenerate("student t requires df > 0"));
    }
    if t.is_nan() {
        return Ok(f64::NAN);
    }
    let x = df / (df + t * t);
    let tail = 0.5 * inc_beta(df / 2.0, 0.5, x);
    Ok(if t >= 0.0 { 1.0 - tail } else { tail })
}

/// Two-tailed p-value for a t statistic: `P(|T| ≥ |t|)`.
///
/// # Errors
///
/// [`StatsError::Degenerate`] for `df ≤ 0`.
pub fn student_t_two_tailed(t: f64, df: f64) -> Result<f64> {
    if df <= 0.0 || df.is_nan() {
        return Err(StatsError::Degenerate("student t requires df > 0"));
    }
    if t.is_nan() {
        return Ok(f64::NAN);
    }
    // P(|T| >= |t|) = I_{df/(df+t^2)}(df/2, 1/2), directly — avoids the
    // 1-(1-x) cancellation for huge |t| (the paper's p = 2e-15 regime).
    Ok(inc_beta(df / 2.0, 0.5, df / (df + t * t)))
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Returns the KS statistic `D = sup |F₁(x) − F₂(x)|` and the asymptotic
/// two-sided p-value from the Kolmogorov distribution
/// `Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}` with the effective-sample-size
/// argument `λ = (√n_e + 0.12 + 0.11/√n_e)·D` (Numerical Recipes'
/// `kstwo`). Used to compare distributions across time windows (is the
/// waiting-time law stationary over the collection period?).
///
/// # Errors
///
/// [`StatsError::TooFewSamples`] when either sample is empty;
/// [`StatsError::NonFiniteValue`] on NaN/∞.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<(f64, f64)> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::TooFewSamples {
            needed: 1,
            got: a.len().min(b.len()),
        });
    }
    crate::check_finite(a)?;
    crate::check_finite(b)?;
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let xa = sa[i];
        let xb = sb[j];
        if xa <= xb {
            i += 1;
        }
        if xb <= xa {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = (na * nb / (na + nb)).sqrt();
    let lambda = (ne + 0.12 + 0.11 / ne) * d;
    Ok((d, kolmogorov_q(lambda)))
}

/// Kolmogorov survival function `Q(λ)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += term;
        if term.abs() < 1e-12 * sum.abs().max(1e-12) {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: f64, want: f64, tol: f64) {
        assert!((got - want).abs() < tol, "got {got}, want {want}");
    }

    #[test]
    fn normal_cdf_reference_points() {
        close(normal_cdf(0.0), 0.5, 1e-15);
        // SciPy norm.cdf(1.959963984540054) = 0.975
        close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-12);
        close(normal_cdf(-1.959_963_984_540_054), 0.025, 1e-12);
        close(normal_cdf(3.0), 0.998_650_101_968_369_9, 1e-10);
    }

    #[test]
    fn normal_sf_tail_accuracy() {
        // SciPy norm.sf(6) = 9.865876450376946e-10
        let got = normal_sf(6.0);
        let want = 9.865_876_450_376_946e-10;
        assert!((got - want).abs() / want < 1e-6, "got {got}");
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for p in [1e-10, 0.001, 0.025, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-12] {
            let x = normal_quantile(p).unwrap();
            close(normal_cdf(x), p, 1e-11);
        }
    }

    #[test]
    fn normal_quantile_known_points() {
        close(normal_quantile(0.5).unwrap(), 0.0, 1e-12);
        close(normal_quantile(0.975).unwrap(), 1.959_963_984_540_054, 1e-9);
        close(normal_quantile(0.841_344_746_068_543).unwrap(), 1.0, 1e-9);
    }

    #[test]
    fn normal_quantile_rejects_bad_p() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.5).is_err());
        assert!(normal_quantile(f64::NAN).is_err());
    }

    #[test]
    fn t_cdf_symmetry_and_median() {
        for df in [1.0, 5.0, 30.0] {
            close(student_t_cdf(0.0, df).unwrap(), 0.5, 1e-14);
            for t in [0.5, 1.0, 2.5] {
                let upper = student_t_cdf(t, df).unwrap();
                let lower = student_t_cdf(-t, df).unwrap();
                close(upper + lower, 1.0, 1e-13);
            }
        }
    }

    #[test]
    fn t_cdf_reference_values() {
        // SciPy t.cdf(2.0, 10) = 0.9633059826146299
        close(
            student_t_cdf(2.0, 10.0).unwrap(),
            0.963_305_982_614_629_9,
            1e-12,
        );
        // t.cdf(1.0, 1) = 0.75 (Cauchy)
        close(student_t_cdf(1.0, 1.0).unwrap(), 0.75, 1e-12);
        // Large df approaches the normal.
        close(student_t_cdf(1.96, 1e6).unwrap(), normal_cdf(1.96), 1e-5);
    }

    #[test]
    fn t_two_tailed_reference_values() {
        // SciPy 2*t.sf(2.0, 10) = 0.07338803477074023
        close(
            student_t_two_tailed(2.0, 10.0).unwrap(),
            0.073_388_034_770_740_23,
            1e-12,
        );
        // Extreme statistic: 2*t.sf(12, 58) ~ 2.9e-17 — must not round to 0
        // or lose sign; this is the paper's p = 2e-15 regime.
        let p = student_t_two_tailed(12.0, 58.0).unwrap();
        assert!(p > 0.0 && p < 1e-15, "p = {p}");
    }

    #[test]
    fn t_two_tailed_is_symmetric_in_t() {
        let a = student_t_two_tailed(2.5, 20.0).unwrap();
        let b = student_t_two_tailed(-2.5, 20.0).unwrap();
        close(a, b, 1e-15);
    }

    #[test]
    fn t_functions_reject_bad_df() {
        assert!(student_t_cdf(1.0, 0.0).is_err());
        assert!(student_t_cdf(1.0, -3.0).is_err());
        assert!(student_t_two_tailed(1.0, f64::NAN).is_err());
    }

    #[test]
    fn t_nan_statistic_propagates() {
        assert!(student_t_cdf(f64::NAN, 5.0).unwrap().is_nan());
        assert!(student_t_two_tailed(f64::NAN, 5.0).unwrap().is_nan());
    }

    #[test]
    fn ks_identical_samples_accept() {
        let xs: Vec<f64> = (0..500).map(|i| (i % 37) as f64).collect();
        let (d, p) = ks_two_sample(&xs, &xs).unwrap();
        assert!(d < 1e-12);
        assert!(p > 0.99);
    }

    #[test]
    fn ks_disjoint_samples_reject() {
        let a: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| 10_000.0 + i as f64).collect();
        let (d, p) = ks_two_sample(&a, &b).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
        assert!(p < 1e-10, "p = {p}");
    }

    #[test]
    fn ks_same_distribution_usually_accepts() {
        // Two deterministic interleavings of the same uniform grid.
        let a: Vec<f64> = (0..1_000).map(|i| (i * 2) as f64).collect();
        let b: Vec<f64> = (0..1_000).map(|i| (i * 2 + 1) as f64).collect();
        let (d, p) = ks_two_sample(&a, &b).unwrap();
        assert!(d < 0.01, "d = {d}");
        assert!(p > 0.5, "p = {p}");
    }

    #[test]
    fn ks_shifted_distribution_detected() {
        let a: Vec<f64> = (0..800).map(|i| (i % 100) as f64).collect();
        let b: Vec<f64> = (0..800).map(|i| (i % 100) as f64 + 30.0).collect();
        let (d, p) = ks_two_sample(&a, &b).unwrap();
        assert!(d > 0.25, "d = {d}");
        assert!(p < 1e-6, "p = {p}");
    }

    #[test]
    fn ks_is_symmetric_and_validates() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.5];
        let (d1, p1) = ks_two_sample(&a, &b).unwrap();
        let (d2, p2) = ks_two_sample(&b, &a).unwrap();
        assert_eq!(d1, d2);
        assert_eq!(p1, p2);
        assert!(ks_two_sample(&[], &b).is_err());
        assert!(ks_two_sample(&a, &[f64::NAN]).is_err());
    }

    #[test]
    fn kolmogorov_q_boundaries() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.3) > 0.99);
        // Known value: Q(1.0) ≈ 0.26999967167735456
        assert!((kolmogorov_q(1.0) - 0.269_999_671_677_354_56).abs() < 1e-9);
        assert!(kolmogorov_q(3.0) < 1e-7);
    }
}
