//! Descriptive statistics: moments, quantiles, summaries.

use crate::{check_finite, Result, StatsError};

/// Arithmetic mean.
///
/// # Errors
///
/// [`StatsError::TooFewSamples`] on empty input,
/// [`StatsError::NonFiniteValue`] if any value is NaN/∞.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    check_finite(xs)?;
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased (n−1) sample variance, via Welford's algorithm for numerical
/// stability on large, offset-heavy inputs (epoch timestamps).
///
/// # Errors
///
/// Needs at least 2 finite samples.
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: xs.len(),
        });
    }
    check_finite(xs)?;
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let delta = x - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (x - mean);
    }
    Ok(m2 / (xs.len() - 1) as f64)
}

/// Sample standard deviation (square root of [`variance`]).
///
/// # Errors
///
/// Same as [`variance`].
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    variance(xs).map(f64::sqrt)
}

/// Linear-interpolation quantile (type-7, the NumPy/R default).
/// `q` must be in `[0, 1]`.
///
/// # Errors
///
/// [`StatsError::TooFewSamples`] on empty input,
/// [`StatsError::Degenerate`] for `q` outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(StatsError::Degenerate("quantile q must be in [0,1]"));
    }
    check_finite(xs)?;
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// Same as [`quantile`].
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// A one-pass numeric summary of a sample.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a summary is pure data; dropping it discards the statistics"]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (NaN when `n < 2`).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median.
    pub median: f64,
}

impl Summary {
    /// Computes the summary.
    ///
    /// # Errors
    ///
    /// Empty or non-finite input.
    pub fn of(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
        }
        check_finite(xs)?;
        let mean = mean(xs)?;
        let std_dev = if xs.len() >= 2 {
            std_dev(xs)?
        } else {
            f64::NAN
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Ok(Self {
            n: xs.len(),
            mean,
            std_dev,
            min,
            max,
            median: median(xs)?,
        })
    }
}

/// Geometric mean of strictly positive values.
///
/// # Errors
///
/// Empty input or any value ≤ 0 / non-finite.
pub fn geometric_mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let mut acc = 0.0;
    for &x in xs {
        if !x.is_finite() || x <= 0.0 {
            return Err(StatsError::NonPositiveValue(x));
        }
        acc += x.ln();
    }
    Ok((acc / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert_eq!(mean(&[5.0]).unwrap(), 5.0);
        assert!(mean(&[]).is_err());
        assert!(mean(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn variance_textbook() {
        // Var([2,4,4,4,5,5,7,9]) with n-1 = 32/7
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_stable_under_large_offset() {
        // Epoch-seconds-sized offsets must not destroy precision.
        let base = 1.4e9;
        let xs: Vec<f64> = [1.0, 2.0, 3.0, 4.0, 5.0].iter().map(|x| x + base).collect();
        assert!((variance(&xs).unwrap() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn variance_needs_two_samples() {
        assert_eq!(
            variance(&[1.0]),
            Err(StatsError::TooFewSamples { needed: 2, got: 1 })
        );
    }

    #[test]
    fn std_dev_is_sqrt_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((std_dev(&xs).unwrap().powi(2) - variance(&xs).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn quantile_type7_matches_numpy() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        // numpy.percentile([1,2,3,4], 25) = 1.75
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&xs).unwrap(), 5.0);
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(quantile(&[1.0], -0.1).is_err());
        assert!(quantile(&[1.0], 1.1).is_err());
        assert!(quantile(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs = [4.0, 1.0, 3.0, 2.0, 5.0];
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample_has_nan_std() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert!(s.std_dev.is_nan());
    }

    #[test]
    fn geometric_mean_known() {
        assert!((geometric_mean(&[1.0, 100.0]).unwrap() - 10.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(geometric_mean(&[1.0, -2.0]).is_err());
        assert!(geometric_mean(&[]).is_err());
    }
}
