//! Effective distance vs geographic distance as an arrival-time
//! predictor (Brockmann & Helbing, Science 2013) — why the Twitter-
//! derived mobility *network* matters more than the map.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example effective_distance
//! ```

use tweetmob::core::{AreaSet, Experiment, Scale};
use tweetmob::epidemic::{
    arrival_time_correlation, effective_distance_from, estimate_r0, MobilityNetwork,
    OutbreakScenario,
};
use tweetmob::models::InterveningPopulation;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn main() {
    // Twitter-derived gravity network over the 20 national cities.
    let dataset = TweetGenerator::new(GeneratorConfig::default()).generate();
    let experiment = Experiment::new(&dataset);
    let report = experiment.mobility(Scale::National).expect("mobility fit");
    let areas = AreaSet::of_scale(Scale::National);
    let n = areas.len();
    let populations = areas.census_populations();
    let distances: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| areas.distance_km(i, j)).collect())
        .collect();
    let centers = areas.centers();
    let calc = InterveningPopulation::build(&centers, &populations);
    let intervening: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0.0 } else { calc.s(i, j) })
                .collect()
        })
        .collect();
    let network = MobilityNetwork::from_model(
        &report.gravity2,
        populations,
        &distances,
        &intervening,
        0.02,
    )
    .expect("network");

    // Simulate an outbreak from Sydney and estimate R0 back from the
    // curve (surveillance sanity check).
    let scenario = OutbreakScenario::new(network.clone(), 0.5, 0.2).seed(0, 20.0);
    let timeline = scenario.run_deterministic(365.0, 0.25).expect("simulation");
    match estimate_r0(&timeline, (10.0, 35.0), 0.2, None) {
        Ok(est) => println!(
            "R0 read back from the simulated curve: {:.2} (truth 2.50, fit R² = {:.4})",
            est.r0, est.fit_r_squared
        ),
        Err(e) => println!("R0 estimation failed: {e}"),
    }
    println!();

    // Compare the two distance notions as arrival-time predictors.
    let d_eff = effective_distance_from(&network, 0);
    let d_geo: Vec<f64> = (0..n).map(|j| areas.distance_km(0, j)).collect();
    let c_eff = arrival_time_correlation(&d_eff, &timeline, 0, 100.0).expect("eff corr");
    let c_geo = arrival_time_correlation(&d_geo, &timeline, 0, 100.0).expect("geo corr");
    println!("arrival-time predictor     Pearson r");
    println!("  effective distance        {:+.3}", c_eff.correlation.r);
    println!("  geographic distance       {:+.3}", c_geo.correlation.r);
    println!();
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "city", "d_geo km", "d_eff", "arrival day"
    );
    let mut order: Vec<usize> = (1..n).collect();
    order.sort_by(|&a, &b| d_eff[a].total_cmp(&d_eff[b]));
    for p in order {
        println!(
            "{:<16} {:>10.0} {:>10.2} {:>12}",
            areas.areas()[p].name,
            d_geo[p],
            d_eff[p],
            timeline
                .arrival_time(p, 100.0)
                .map_or("never".into(), |t| format!("{t:.0}"))
        );
    }
    println!();
    println!("reading: cities sorted by effective distance arrive nearly in order,");
    println!("even where geography disagrees (a big far city beats a small near");
    println!("town) — the practical payoff of estimating mobility from tweets.");
}
