//! Disease-spread simulation from Twitter-derived mobility — the paper's
//! future-work goal ("a model-based, responsive prediction method from
//! Twitter data for disease spread").
//!
//! Pipeline: synthetic tweets → extracted national OD flows → fitted
//! gravity model → metapopulation mobility network → SIR outbreak seeded
//! in Sydney, simulated both deterministically and stochastically.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example outbreak
//! ```

use tweetmob::core::{AreaSet, Experiment, Scale};
use tweetmob::epidemic::{MobilityNetwork, OutbreakScenario, SeirParams};
use tweetmob::models::InterveningPopulation;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn main() {
    // 1. Twitter-derived mobility.
    let dataset = TweetGenerator::new(GeneratorConfig::default()).generate();
    let experiment = Experiment::new(&dataset);
    let report = experiment
        .mobility(Scale::National)
        .expect("national mobility fit");
    println!(
        "fitted gravity model on {} extracted trips: gamma = {:.2}",
        report.od_total, report.gravity2.gamma
    );

    // 2. Build the metapopulation network from the *fitted* model over
    //    census populations — the paper's proposed census swap.
    let areas = AreaSet::of_scale(Scale::National);
    let populations = areas.census_populations();
    let n = areas.len();
    let distances: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| areas.distance_km(i, j)).collect())
        .collect();
    let centers = areas.centers();
    let intervening_calc = InterveningPopulation::build(&centers, &populations);
    let intervening: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 0.0 } else { intervening_calc.s(i, j) })
                .collect()
        })
        .collect();
    let model = report.gravity2;
    let network = MobilityNetwork::from_model(
        &model,
        populations,
        &distances,
        &intervening,
        0.02, // 2 % of each city travels per day
    )
    .expect("network construction");

    // 3. Seed an outbreak in Sydney (patch 0): SEIR, R0 = 2.5.
    let scenario = OutbreakScenario::new(network, 0.5, 0.2)
        .with_seir(SeirParams { sigma: 0.25 })
        .seed(0, 20.0);
    let timeline = scenario
        .run_deterministic(365.0, 0.25)
        .expect("deterministic run");

    println!();
    println!("--- deterministic SEIR, seeded with 20 cases in Sydney ---");
    println!(
        "{:<16} {:>12} {:>14} {:>14}",
        "city", "arrival(day)", "peak infected", "final size"
    );
    let mut rows: Vec<(usize, Option<f64>)> = (0..areas.len())
        .map(|p| (p, timeline.arrival_time(p, 100.0)))
        .collect();
    rows.sort_by(|a, b| {
        a.1.unwrap_or(f64::INFINITY)
            .total_cmp(&b.1.unwrap_or(f64::INFINITY))
    });
    for (p, arrival) in rows {
        println!(
            "{:<16} {:>12} {:>14.0} {:>14.0}",
            areas.areas()[p].name,
            arrival.map_or("never".to_string(), |t| format!("{t:.0}")),
            timeline.peak_infected(p),
            timeline.final_size(p)
        );
    }

    // 4. Stochastic replicates: arrival time of the outbreak in Perth
    //    (the far west coast) across random seeds.
    println!();
    println!("--- stochastic replicates: arrival in Perth (≥100 cases) ---");
    let perth = areas
        .areas()
        .iter()
        .position(|a| a.name == "Perth")
        .expect("Perth in gazetteer");
    for seed in 0..5 {
        let tl = scenario
            .run_stochastic(365.0, 0.25, seed)
            .expect("stochastic run");
        match tl.arrival_time(perth, 100.0) {
            Some(day) => println!("  seed {seed}: day {day:.0}"),
            None => println!("  seed {seed}: outbreak never reached Perth"),
        }
    }
}
