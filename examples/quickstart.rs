//! Quickstart: generate a synthetic tweet stream, estimate population,
//! extract mobility, compare the gravity and radiation models, and save
//! the fitted models as a reusable artifact.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tweetmob::core::{Experiment, Scale};
use tweetmob::data::{DatasetSummary, ModelBundle};
use tweetmob::models::ModelKind;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn main() {
    // 1. Generate a synthetic stream over real Australian geography.
    //    (GeneratorConfig::paper_scale() reproduces the paper's 473,956
    //    users; `small` keeps this example instant.)
    let config = GeneratorConfig::small();
    let dataset = TweetGenerator::new(config).generate();
    println!(
        "generated {} tweets from {} users",
        dataset.n_tweets(),
        dataset.n_users()
    );
    println!();

    // 2. Dataset statistics (the paper's Table I).
    println!("--- dataset summary ---");
    println!("{}", DatasetSummary::of(&dataset));
    println!();

    // 3. Population estimation at the national scale (Fig. 3).
    let experiment = Experiment::new(&dataset);
    match experiment.population_correlation(Scale::National) {
        Ok(pop) => {
            println!("--- population estimation, national scale ---");
            println!(
                "Pearson r = {:.3} (p = {:.2e}) over {} cities",
                pop.correlation.r,
                pop.correlation.p_two_tailed,
                pop.areas.len()
            );
            for a in pop.areas.iter().take(5) {
                println!(
                    "  {:<12} census {:>9.0}  rescaled-twitter {:>9.0}",
                    a.name, a.census, a.rescaled
                );
            }
            println!("  ...");
        }
        Err(e) => println!("population estimation failed: {e}"),
    }
    println!();

    // 4. Mobility models (Fig. 4 / Table II), fitted once — the report
    //    for reading, the bundle for keeping.
    let bundle = match experiment.fit(Scale::National) {
        Ok((report, bundle)) => {
            println!("--- mobility estimation, national scale ---");
            print!("{report}");
            bundle
        }
        Err(e) => {
            println!("mobility estimation failed: {e}");
            return;
        }
    };
    println!();

    // 5. Fit once, predict many: persist the fitted models with their
    //    geometry, reload, and answer queries without refitting.
    //    (`ModelBundle::save_file`/`load_file` do the same against a
    //    real path; predictions from a loaded artifact are bit-identical
    //    to the in-memory fit.)
    let mut artifact = Vec::new();
    bundle.save(&mut artifact).expect("serialize artifact");
    let loaded = ModelBundle::load(&artifact[..]).expect("reload artifact");
    println!("--- fit once, predict many ---");
    println!("artifact: {} bytes, {} areas", artifact.len(), loaded.len());
    let origin = loaded.area_index("Sydney").expect("Sydney in bundle");
    println!("top 3 gravity destinations from Sydney:");
    let top = loaded
        .top_k(ModelKind::Gravity2, origin, 3)
        .expect("origin index from the bundle itself");
    for (dest, flow) in top {
        println!(
            "  {:<14} predicted flow {flow:.1}",
            loaded.areas()[dest].name
        );
    }
}
