//! Quickstart: generate a synthetic tweet stream, estimate population,
//! extract mobility, and compare the gravity and radiation models.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tweetmob::core::{Experiment, Scale};
use tweetmob::data::DatasetSummary;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn main() {
    // 1. Generate a synthetic stream over real Australian geography.
    //    (GeneratorConfig::paper_scale() reproduces the paper's 473,956
    //    users; `small` keeps this example instant.)
    let config = GeneratorConfig::small();
    let dataset = TweetGenerator::new(config).generate();
    println!("generated {} tweets from {} users", dataset.n_tweets(), dataset.n_users());
    println!();

    // 2. Dataset statistics (the paper's Table I).
    println!("--- dataset summary ---");
    println!("{}", DatasetSummary::of(&dataset));
    println!();

    // 3. Population estimation at the national scale (Fig. 3).
    let experiment = Experiment::new(&dataset);
    match experiment.population_correlation(Scale::National) {
        Ok(pop) => {
            println!("--- population estimation, national scale ---");
            println!(
                "Pearson r = {:.3} (p = {:.2e}) over {} cities",
                pop.correlation.r,
                pop.correlation.p_two_tailed,
                pop.areas.len()
            );
            for a in pop.areas.iter().take(5) {
                println!(
                    "  {:<12} census {:>9.0}  rescaled-twitter {:>9.0}",
                    a.name, a.census, a.rescaled
                );
            }
            println!("  ...");
        }
        Err(e) => println!("population estimation failed: {e}"),
    }
    println!();

    // 4. Mobility models (Fig. 4 / Table II).
    match experiment.mobility(Scale::National) {
        Ok(report) => {
            println!("--- mobility estimation, national scale ---");
            print!("{report}");
        }
        Err(e) => println!("mobility estimation failed: {e}"),
    }
}
