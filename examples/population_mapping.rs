//! Population mapping: density raster, per-area estimates, and the
//! search-radius sensitivity study (paper Figs. 1 and 3).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example population_mapping
//! ```

use tweetmob::core::{Experiment, Scale};
use tweetmob::geo::{DensityGrid, AUSTRALIA_BBOX};
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn main() {
    let dataset = TweetGenerator::new(GeneratorConfig::default()).generate();
    let experiment = Experiment::new(&dataset);

    // Density map (Fig. 1).
    let mut grid = DensityGrid::new(AUSTRALIA_BBOX, 0.25);
    grid.extend(dataset.iter_points());
    println!("tweet-density map ({} tweets, log scale, north up):", grid.total());
    print!("{}", grid.render_ascii(3));
    println!();

    // Per-area population estimates at every scale (Fig. 3a).
    for scale in Scale::ALL {
        match experiment.population_correlation(scale) {
            Ok(pop) => {
                println!(
                    "{}: r = {:.3}, rescale factor C = {:.0} (1 Twitter user ≈ {:.0} residents)",
                    scale.name(),
                    pop.correlation.r,
                    pop.rescale_factor,
                    pop.rescale_factor
                );
                // Show the three largest mismatches — the "outliers" the
                // paper notes appearing below the national scale.
                let mut areas: Vec<_> = pop.areas.iter().collect();
                areas.sort_by(|a, b| {
                    let ra = (a.rescaled / a.census).ln().abs();
                    let rb = (b.rescaled / b.census).ln().abs();
                    rb.total_cmp(&ra)
                });
                for a in areas.iter().take(3) {
                    println!(
                        "    outlier {:<16} census {:>9.0} vs estimate {:>9.0} ({:+.0} %)",
                        a.name,
                        a.census,
                        a.rescaled,
                        (a.rescaled / a.census - 1.0) * 100.0
                    );
                }
            }
            Err(e) => println!("{}: {e}", scale.name()),
        }
    }
    println!();

    // Radius sensitivity at the metropolitan scale (Fig. 3b + E9 sweep).
    println!("metropolitan search-radius sweep (Fig. 3b generalised):");
    println!("{:>8} {:>10} {:>14}", "ε (km)", "r", "median users");
    for radius in [0.25, 0.5, 1.0, 2.0, 5.0, 10.0] {
        match experiment.population_correlation_with_radius(Scale::Metropolitan, radius) {
            Ok(pop) => println!(
                "{:>8} {:>10.3} {:>14.0}",
                radius, pop.correlation.r, pop.median_users
            ),
            Err(e) => println!("{radius:>8} {e}"),
        }
    }
    println!();
    println!("expected shape: r peaks near the paper's ε = 2 km and degrades at");
    println!("0.5 km and below (small discs miss each suburb's activity centroid).");
}
