//! Full model shoot-out across scales and population sources.
//!
//! Reproduces the paper's Table II comparison and extends it two ways the
//! paper's future work asks for: an extra model class (intervening
//! opportunities) and the census-population swap ("by replacing m and n
//! with the population from census, it is feasible to estimate the
//! real-world mobility").
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use tweetmob::core::{AreaSet, Experiment, PopulationSource, Scale};
use tweetmob::data::ModelBundle;
use tweetmob::models::ModelKind;
use tweetmob::synth::{GeneratorConfig, TweetGenerator};

fn main() {
    let dataset = TweetGenerator::new(GeneratorConfig::default()).generate();
    let experiment = Experiment::new(&dataset);

    println!("model comparison on {} tweets", dataset.n_tweets());
    for source in [PopulationSource::Twitter, PopulationSource::Census] {
        println!();
        println!(
            "=== populations from {} ===",
            match source {
                PopulationSource::Twitter => "Twitter (the paper's fits)",
                PopulationSource::Census => "census (the paper's future-work swap)",
            }
        );
        println!(
            "{:<14} {:<16} {:>9} {:>9} {:>9} {:>9}",
            "scale", "model", "Pearson", "hit@50%", "logRMSE", "SSI"
        );
        for scale in Scale::ALL {
            // Each fit also yields a persistable artifact; the report
            // prints the comparison, the bundle answers later queries.
            let (report, bundle) = match experiment.fit_with(
                &AreaSet::of_scale(scale),
                source,
                scale.name().to_string(),
            ) {
                Ok(pair) => pair,
                Err(e) => {
                    println!("{:<14} failed: {e}", scale.name());
                    continue;
                }
            };
            for eval in &report.evaluations {
                println!(
                    "{:<14} {:<16} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                    scale.name(),
                    eval.model,
                    eval.pearson,
                    eval.hit_rate_50,
                    eval.log_rmse,
                    eval.sorensen
                );
            }
            // Fit once, predict many: round-trip the artifact and show
            // that the loaded models answer without refitting.
            if scale == Scale::National && source == PopulationSource::Twitter {
                let mut bytes = Vec::new();
                bundle.save(&mut bytes).expect("serialize artifact");
                let loaded = ModelBundle::load(&bytes[..]).expect("reload artifact");
                let origin = loaded.area_index("Sydney").expect("Sydney");
                let top = loaded
                    .top_k(ModelKind::Gravity2, origin, 1)
                    .expect("origin index from the bundle itself");
                println!(
                    "{:<14} (artifact: {} bytes; reloaded gravity2 puts {} first from Sydney)",
                    "",
                    bytes.len(),
                    loaded.areas()[top[0].0].name
                );
            }
        }
    }
    println!();
    println!("expected shape (paper Table II): Gravity beats Radiation at every");
    println!("scale; Radiation suffers most at the state scale, where Australia's");
    println!("empty interior makes its intervening-population assumption fail.");
}
