//! # tweetmob
//!
//! Facade crate for the `tweetmob` workspace — a Rust reproduction of
//! *"Multi-scale Population and Mobility Estimation with Geo-tagged
//! Tweets"* (Liu et al., ICDE 2015 workshops / arXiv:1412.0327).
//!
//! The workspace estimates population distributions and inter-area
//! mobility flows from (synthetic) geo-tagged tweet streams at three
//! geographic scales — national, state and metropolitan — and compares
//! gravity and radiation mobility models, reproducing every table and
//! figure of the paper. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for measured-vs-paper results.
//!
//! This crate re-exports the public API of each subsystem under one
//! namespace:
//!
//! * [`geo`] — geodesy, spatial grid index, density rasteriser;
//! * [`stats`] — correlation/p-values, OLS, log binning, power laws,
//!   metrics;
//! * [`data`] — tweet records, columnar dataset, Table-I summaries, I/O;
//! * [`synth`] — the synthetic Australian tweet-stream generator;
//! * [`models`] — gravity / radiation / intervening-opportunities models;
//! * [`core`] — the multi-scale estimation framework (the paper's
//!   contribution);
//! * [`epidemic`] — metapopulation SIR/SEIR over fitted mobility networks
//!   (the paper's stated future-work application);
//! * [`obs`] — structured spans, counters and pipeline metrics (the
//!   instrumentation every stage above records into);
//! * [`par`] — the shared deterministic worker pool every parallel
//!   stage dispatches on (`TWEETMOB_THREADS`, scoped overrides).
//!
//! ## Quickstart
//!
//! ```
//! use tweetmob::synth::{GeneratorConfig, TweetGenerator};
//! use tweetmob::core::{Experiment, Scale};
//!
//! // Generate a small synthetic tweet stream over real Australian
//! // geography, then run the paper's population-estimation experiment.
//! let config = GeneratorConfig::small();
//! let dataset = TweetGenerator::new(config).generate();
//! let experiment = Experiment::new(&dataset);
//! let pop = experiment.population_correlation(Scale::National).unwrap();
//! assert!(pop.correlation.r > 0.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use tweetmob_core as core;
pub use tweetmob_data as data;
pub use tweetmob_epidemic as epidemic;
pub use tweetmob_geo as geo;
pub use tweetmob_models as models;
pub use tweetmob_obs as obs;
pub use tweetmob_par as par;
pub use tweetmob_stats as stats;
pub use tweetmob_synth as synth;
